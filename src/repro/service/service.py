"""The long-lived co-execution service (docs/SERVICE.md).

:class:`CoExecutionService` keeps the whole runtime stack alive across
jobs: one :class:`~repro.compiler.CompilerSession` (sharing one
artifact cache and an in-memory compile memo), one *service-scoped*
:class:`~repro.runtime.health.HealthRegistry` (breaker state shared
across jobs — a device quarantined by tenant A's failures is
quarantined for tenant B too, and re-promotes for everyone), one
:class:`~repro.service.pool.DevicePool` of simulated accelerator
slots, and one :class:`~repro.service.admission.AdmissionController`
enforcing bounded per-tenant queues with deterministic weighted
round-robin dispatch.

The API is ``submit / status / result / cancel / drain``. Each
admitted job runs a full task-graph runtime on its own thread with its
own interpreter, timing ledger, and fault injector — simulated time is
per job, so concurrent execution is bit-identical to standalone
execution — while device access is arbitrated by slot leases and the
shared breakers.

Degradation matrix (see docs/SERVICE.md):

==================  =============================================
Pool family full    job stays QUEUED; other tenants' heads tried
Family breaker OPEN job dispatches *without* that family's lease;
                    its spans run bytecode via the shared breaker,
                    advancing the quarantine clock toward probing
Deadline expired    job CANCELLED before it acquires any lease
Cancel mid-run      cooperative stop at the next firing boundary;
                    queues drained, threads joined, lease released
==================  =============================================
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

from repro.backends.common import FPGA, GPU
from repro.compiler import CompileOptions, CompilerSession
from repro.errors import (
    AdmissionRejected,
    CheckpointReplayError,
    ConfigurationError,
    JobCancelledError,
    JobResultTimeout,
    LiquidMetalError,
    ProcessCrash,
)
from repro.obs.metrics import NULL_METRICS
from repro.runtime.checkpoint import (
    DEFAULT_INTERVAL as CHECKPOINT_DEFAULT_INTERVAL,
    CheckpointRecorder,
)
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.runtime.faults import fault_log_payload
from repro.runtime.health import HealthRegistry
from repro.service.admission import AdmissionController
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
)
from repro.service.journal import (
    NULL_JOURNAL,
    RECOVER_SCHEMA,
    JobJournal,
    canonical_args,
    load_journal,
    outcome_digest,
)
from repro.service.pool import DevicePool

__all__ = [
    "SERVICE_SCHEMA",
    "ServiceConfig",
    "CoExecutionService",
    "validate_service_report",
    "validate_service_file",
    "render_service_report",
    "run_service_driver",
    "run_recovery_driver",
]

#: Schema stamp for service reports.
SERVICE_SCHEMA = "repro.service/1"


@dataclass
class ServiceConfig:
    """Knobs for one co-execution service instance."""

    #: Simulated accelerator slots in the shared pool.
    gpu_slots: int = 2
    fpga_slots: int = 1
    #: Concurrent jobs actually executing (threads), not queue depth.
    max_running: int = 4
    #: Per-tenant queued-job bound; over it, submit() rejects.
    max_queue_depth: int = 8
    #: Base runtime config every job derives from (scheduler, retry,
    #: health policy, fault plan, tracer...). Per-job fields
    #: (job_id/tenant/policy) are overridden at dispatch.
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Compiler options for the service's shared CompilerSession
    #: (point its CacheOptions at a cache_dir to share artifacts).
    compile_options: "CompileOptions | None" = None
    #: Wall clock used for job deadlines and retry-after estimates —
    #: injectable so deadline tests are deterministic.
    clock: object = time.monotonic
    #: Directory for the durable job journal + per-job checkpoint
    #: files (docs/RECOVERY.md). None disables crash consistency.
    journal_dir: "str | None" = None
    #: Decision points between persisted checkpoint frames (only
    #: meaningful with a journal_dir). The default keeps the modeled
    #: persist cost under the documented 10% overhead bar
    #: (docs/RECOVERY.md).
    checkpoint_interval: int = CHECKPOINT_DEFAULT_INTERVAL
    #: Suppress every 'crash' fault firing (burning its budget so
    #: counters/RNG stay aligned) — the uninterrupted-baseline mode
    #: the recovery differential compares against.
    suppress_crashes: bool = False

    def __post_init__(self):
        if self.gpu_slots < 0 or self.fpga_slots < 0:
            raise ConfigurationError("pool slots must be >= 0")
        if self.max_running < 1:
            raise ConfigurationError(
                f"max_running must be >= 1, got {self.max_running}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, "
                f"got {self.max_queue_depth}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, "
                f"got {self.checkpoint_interval}"
            )


class CoExecutionService:
    """A persistent, multi-tenant front end over the runtime stack."""

    def __init__(self, config: "ServiceConfig | None" = None,
                 journal_dir: "str | None" = None):
        self.config = config or ServiceConfig()
        if journal_dir is not None:
            self.config = dataclasses.replace(
                self.config, journal_dir=journal_dir
            )
        self.tracer = self.config.runtime.tracer
        self.metrics = getattr(self.tracer, "metrics", NULL_METRICS)
        self.session = CompilerSession(self.config.compile_options)
        # Service-scoped health: one registry for every job's runtime.
        self.health = HealthRegistry(
            self.config.runtime.health, tracer=self.tracer
        )
        self.pool = DevicePool(
            {GPU: self.config.gpu_slots, FPGA: self.config.fpga_slots},
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            self.config.max_queue_depth, metrics=self.metrics
        )
        self._lock = threading.RLock()
        self._jobs: dict = {}       # job_id -> Job (insertion-ordered)
        self._threads: list = []
        self._seq = 0
        self._running = 0
        self._draining = False
        # Crash consistency (docs/RECOVERY.md): load whatever journal
        # survived the previous incarnation *before* opening it for
        # append, so recovery sees exactly the pre-crash records.
        self._crashed: "ProcessCrash | None" = None
        self._recorders: dict = {}   # job_id -> live CheckpointRecorder
        self._to_recover: list = []  # JobReplay rows needing a re-run
        self._deduped: list = []     # report rows for replayed jobs
        self._rejected_ids: list = []
        self._journal_torn_bytes = 0
        self._journal_prior_records = 0
        if self.config.journal_dir is None:
            self.journal = NULL_JOURNAL
        else:
            snapshot = load_journal(self.config.journal_dir)
            self.journal = JobJournal(
                self.config.journal_dir, tracer=self.tracer
            )
            self._ingest_journal(snapshot)

    def _ingest_journal(self, snapshot) -> None:
        """Fold a prior incarnation's journal into this service:
        terminal jobs become deduplicated Job records (``result()``
        serves them without re-running), non-terminal admitted jobs
        queue for :meth:`recover`, submitted-but-never-admitted jobs
        stay rejected (their admission never committed)."""
        counters = self.tracer.counters
        self._journal_torn_bytes = snapshot.torn_bytes
        self._journal_prior_records = snapshot.records
        for job_id, replay in snapshot.jobs.items():
            number = job_id.rsplit("-", 1)[-1]
            if number.isdigit():
                self._seq = max(self._seq, int(number))
            if not replay.admitted:
                self._rejected_ids.append(job_id)
                continue
            if replay.terminal:
                job = Job(
                    job_id=job_id,
                    tenant=replay.tenant,
                    source=replay.source,
                    entry=replay.entry,
                    args=replay.args or [],
                    app=replay.app,
                    filename=replay.filename,
                    clock=self.config.clock,
                )
                job.recovered = True
                job.state = replay.state
                if replay.state == COMPLETED:
                    job.outcome = replay.outcome()
                    job.digest = job.outcome.digest
                    job.fault_log = list(job.outcome.fault_log)
                else:
                    job.error = LiquidMetalError(
                        f"[journaled {replay.error_type}] {replay.error}"
                    )
                job.done.set()
                self.admission.register(replay.tenant, 1)
                self._jobs[job_id] = job
                self._deduped.append({
                    "job_id": job_id,
                    "app": replay.app,
                    "tenant": replay.tenant,
                    "state": replay.state,
                    "digest": (replay.completed or {}).get("digest"),
                })
                counters.add("recover.dedup")
            else:
                self._to_recover.append(replay)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "CoExecutionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, name: str, weight: int = 1) -> None:
        """Register a tenant (or change its weight). Submissions for
        unregistered tenants are auto-registered at weight 1."""
        self.admission.register(name, weight)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        source: str,
        entry: str,
        args: "list | None" = None,
        *,
        tenant: str,
        app: str = "",
        filename: str = "<lime>",
        deadline_s: "float | None" = None,
    ) -> str:
        """Admit one job. Returns its job id, or raises the typed
        :class:`~repro.errors.AdmissionRejected` when the tenant's
        queue is at its bound (or the service is draining)."""
        counters = self.tracer.counters
        self._check_crashed()
        with self._lock:
            if self._draining:
                counters.add("service.reject")
                raise AdmissionRejected(
                    "service is draining; not admitting new jobs",
                    tenant=tenant,
                    queue_depth=self.admission.queue_depth(tenant),
                    retry_after_s=self.admission.retry_after_hint_s(
                        tenant
                    ),
                    reason="draining",
                )
            if tenant not in (t.name for t in self.admission.tenants()):
                self.admission.register(tenant, 1)
            self._seq += 1
            job = Job(
                job_id=f"job-{self._seq:04d}",
                tenant=tenant,
                source=source,
                entry=entry,
                args=args,
                app=app,
                filename=filename,
                deadline_s=deadline_s,
                clock=self.config.clock,
            )
            if self.journal.enabled:
                # Wire-canonical inputs (docs/RECOVERY.md): a
                # recovered re-run gets its arguments back out of the
                # journal, so the first run must execute the same
                # post-round-trip values. Unserializable arguments
                # stay as-is; the journal marks the job
                # unrecoverable.
                try:
                    job.args = canonical_args(job.args)
                except Exception:
                    pass
            # Write-ahead: the submitted record (full deterministic
            # inputs) lands before the queue commit; a crash between
            # the two leaves a submitted-but-never-admitted record
            # that recovery treats as rejected.
            self.journal.record_submitted(job)
            try:
                self.admission.enqueue(tenant, job)
            except AdmissionRejected:
                counters.add("service.reject")
                counters.add(f"service.reject[{tenant}]")
                raise
            self._jobs[job.job_id] = job
            self.journal.record_admitted(job.job_id)
        # Compile up front (memoized across jobs) so dispatch knows
        # which device families this program can actually use — a
        # gpu-only job must not hold the fpga slot. Compile failures
        # are captured, not raised: the job fails typed when it runs.
        try:
            compiled = self.session.compile_cached(
                source, filename=filename
            )
        except LiquidMetalError as exc:
            job.compile_error = exc
        else:
            job.device_families = tuple(
                family
                for family in self.config.runtime.policy.device_order
                if compiled.store.for_device(family)
            )
        counters.add("service.admit")
        counters.add(f"service.admit[{tenant}]")
        with self.tracer.span(
            "service.job.submit",
            job_id=job.job_id,
            tenant=tenant,
            app=job.app,
            deadline_s=deadline_s,
        ):
            pass
        self._dispatch()
        return job.job_id

    # -- inspection --------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """A point-in-time row for one job (state, tenant, leases,
        error if any)."""
        return self._job(job_id).describe()

    def result(self, job_id: str, timeout_s: "float | None" = None):
        """Block until the job finishes; return its
        :class:`~repro.runtime.engine.RunOutcome` or re-raise the
        job's typed error (FAILED and CANCELLED both raise)."""
        job = self._job(job_id)
        if not job.done.wait(timeout_s):
            raise JobResultTimeout(
                f"job {job_id} still {job.state} after {timeout_s}s",
                job_id=job_id,
                state=job.state,
                timeout_s=timeout_s,
            )
        if job.state == COMPLETED:
            return job.outcome
        if job.error is not None:
            raise job.error
        raise ConfigurationError(
            f"job {job_id} finished in state {job.state!r} "
            f"without an error record"
        )

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "cancelled") -> str:
        """Cancel a job. A queued job is removed immediately; a
        running job's token is tripped and its runtime unwinds at the
        next firing boundary (queues drained, lease released). Returns
        the job's state after the attempt (finished jobs are left
        alone)."""
        job = self._job(job_id)
        with self._lock:
            if job.state == QUEUED and self.admission.remove(job):
                job.token.cancel(reason)
                self._finish_unrun(job)
                return job.state
        if job.state == RUNNING:
            job.token.cancel(reason)
        return job.state

    def _finish_unrun(self, job: Job) -> None:
        """Finish a job that never ran (cancelled or deadline-expired
        while queued): record the typed error, count it, wake waiters.
        Caller holds the lock or owns the job."""
        try:
            job.token.check()
        except JobCancelledError as exc:
            job.error = exc
        job.state = CANCELLED
        counters = self.tracer.counters
        counters.add("service.job.cancelled")
        counters.add(f"service.job.cancelled[{job.tenant}]")
        job.done.set()

    # -- dispatch ----------------------------------------------------------

    def _lease_request(self, job: Job) -> tuple:
        """Device families this job should lease: every family its
        compiled program has artifacts for that has configured slots —
        minus any family with an OPEN breaker (graceful degradation:
        the job runs, its spans fall back to bytecode through the
        shared breakers, and the quarantine clock keeps advancing so
        the family can re-promote)."""
        if not self.config.runtime.policy.use_accelerators:
            return ()
        return tuple(
            family
            for family in job.device_families
            if self.pool.capacity(family) > 0
            and not self.health.family_open(family)
        )

    def _dispatch(self) -> None:
        """Fill free running slots from the tenant queues (smooth WRR
        order). A head job whose lease cannot be granted is requeued
        at the front and its tenant skipped for the rest of the round,
        so one starved tenant never blocks the others."""
        to_start: list = []
        with self._lock:
            if self._crashed is not None:
                # The simulated process is dead: nothing dispatches
                # until a restarted service recovers the journal.
                return
            tried: set = set()
            while self._running + len(to_start) < self.config.max_running:
                job = self.admission.next_job(exclude=tried)
                if job is None:
                    break
                if job.token.cancelled():
                    # Deadline expired (or cancel raced the queue):
                    # finish it before it ever takes a lease.
                    self._finish_unrun(job)
                    continue
                lease = self.pool.acquire(self._lease_request(job))
                if lease is None:
                    self.admission.requeue_front(job)
                    tried.add(job.tenant)
                    continue
                job.lease = lease
                job.leased_families = lease.families
                job.state = RUNNING
                self.journal.record_leased(job.job_id, lease.families)
                self.journal.record_running(job.job_id)
                to_start.append(job)
            self._running += len(to_start)
            for job in to_start:
                thread = threading.Thread(
                    target=self._run_job,
                    args=(job,),
                    name=f"svc-{job.job_id}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _runtime_config(self, job: Job) -> RuntimeConfig:
        base = self.config.runtime
        families = tuple(
            family
            for family in base.policy.device_order
            if self.pool.capacity(family) > 0
        )
        # The job keeps OPEN families in its policy: the shared
        # breakers mediate every batch, serving bytecode while OPEN
        # and shadow-probing in HALF_OPEN — that is how a quarantined
        # family re-promotes across jobs.
        policy = dataclasses.replace(base.policy, device_order=families)
        return base.with_overrides(
            policy=policy, job_id=job.job_id, tenant=job.tenant
        )

    def _make_recorder(
        self, job: Job, resume: bool
    ) -> "CheckpointRecorder | None":
        """A checkpoint recorder for this job run, or None when the
        service has no journal or the runtime config is not
        capturable (kernel specialization, adaptive policies)."""
        if not self.journal.enabled:
            return None
        cfg = self.config.runtime
        if cfg.specialize.enabled or cfg.policy.adaptive:
            return None
        path = self.journal.checkpoint_path(job.job_id)
        if resume:
            recorder = CheckpointRecorder.resume(
                path,
                interval=self.config.checkpoint_interval,
                job_id=job.job_id,
                tracer=self.tracer,
            )
            if recorder is not None:
                return recorder
            # Missing/empty/wholly-torn checkpoint: fall back to a
            # from-scratch re-run (fresh capture below).
            job.recovery_mode = "scratch"
        return CheckpointRecorder(
            path,
            interval=self.config.checkpoint_interval,
            job_id=job.job_id,
            tracer=self.tracer,
        )

    def _prepare_faults(self, runtime: Runtime, job: Job) -> None:
        """Arm crash suppression on the job's injector: firings this
        job already journaled burn their budget silently on the re-run
        (counters and RNG stay aligned with the uninterrupted
        baseline), and a baseline service can suppress every crash
        outright."""
        if job.crash_suppression:
            runtime.faults.suppress(job.crash_suppression)
        if self.config.suppress_crashes:
            runtime.faults.suppress_all_crashes = True

    def _check_crashed(self) -> None:
        with self._lock:
            crashed = self._crashed
        if crashed is not None:
            raise crashed

    def _die(self, crash: ProcessCrash) -> None:
        """Simulate the process dying: all later journal writes are
        lost, every live checkpoint recorder stops persisting (a
        zombie runtime thread must not race the restarted service with
        stale frames), every running job's token trips so its thread
        unwinds, and the public API raises the crash."""
        self.journal.mark_dead()
        with self._lock:
            self._crashed = crash
            recorders = list(self._recorders.values())
            running = [
                j for j in self._jobs.values()
                if j.state == RUNNING and j.error is None
            ]
        for recorder in recorders:
            recorder.kill()
        for other in running:
            other.token.cancel("process crash")

    def _run_job(self, job: Job) -> None:
        counters = self.tracer.counters
        start_wall = time.perf_counter()
        runtime = None
        try:
            with self.tracer.span(
                "service.job.run",
                job_id=job.job_id,
                tenant=job.tenant,
                app=job.app,
                leased=",".join(job.leased_families),
            ) as span:
                if job.compile_error is not None:
                    raise job.compile_error
                compiled = self.session.compile_cached(
                    job.source, filename=job.filename
                )
                resume = (
                    job.recovered and job.recovery_mode == "checkpoint"
                )
                while True:
                    recorder = self._make_recorder(job, resume)
                    try:
                        runtime = Runtime(
                            compiled,
                            self._runtime_config(job),
                            health_registry=self.health,
                            cancel_token=job.token,
                        )
                        if recorder is not None:
                            # Attach outside the ctor so a rejected
                            # resume leaves a closeable runtime.
                            runtime.checkpointer = recorder
                            recorder.attach(runtime)
                            with self._lock:
                                self._recorders[job.job_id] = recorder
                        self._prepare_faults(runtime, job)
                        outcome = runtime.run(job.entry, job.args)
                    except CheckpointReplayError:
                        # The frame does not match the re-run (config
                        # drift, torn memo): scrub the breakers it
                        # restored and re-run from scratch — still
                        # bit-identical, just slower.
                        if recorder is not None:
                            recorder.invalidate(self.health)
                        if runtime is not None:
                            runtime.shutdown_active()
                            runtime.close()
                            runtime = None
                        job.recovery_mode = "scratch"
                        resume = False
                        counters.add("service.job.checkpoint_invalid")
                        continue
                    break
                job.outcome = outcome
                job.fault_log = fault_log_payload(runtime.faults.log)
                job.digest = outcome_digest(
                    outcome.value,
                    outcome.output,
                    outcome.ledger.total_s,
                    job.fault_log,
                )
                job.state = COMPLETED
                self.journal.record_completed(job)
                span.set(
                    state=COMPLETED, simulated_s=outcome.ledger.total_s
                )
            counters.add("service.job.completed")
            counters.add(f"service.job.completed[{job.tenant}]")
        except JobCancelledError as exc:
            job.error = exc
            job.state = CANCELLED
            self.journal.record_cancelled(job.job_id, exc)
            counters.add("service.job.cancelled")
            counters.add(f"service.job.cancelled[{job.tenant}]")
        except ProcessCrash as exc:
            # The simulated process dies here. Journal the one record
            # a dying process gets to write — which firing killed it —
            # then lose everything after it.
            job.error = exc
            job.state = FAILED
            counters.add("service.crash")
            self.journal.record_crashed(job.job_id, exc)
            self._die(exc)
        except LiquidMetalError as exc:
            job.error = exc
            job.state = FAILED
            self.journal.record_failed(job.job_id, exc)
            counters.add("service.job.failed")
            counters.add(f"service.job.failed[{job.tenant}]")
        except BaseException as exc:  # defensive: never hang a waiter
            job.error = exc
            job.state = FAILED
            self.journal.record_failed(job.job_id, exc)
            counters.add("service.job.failed")
        finally:
            with self._lock:
                self._recorders.pop(job.job_id, None)
            if runtime is not None:
                # Drain any wreckage a cancellation left behind, then
                # detach the runtime's listener from the shared
                # registry.
                runtime.shutdown_active()
                runtime.close()
            self.pool.release(job.lease)
            job.wall_s = time.perf_counter() - start_wall
            self.admission.observe_duration(job.wall_s)
            with self._lock:
                self._running -= 1
            job.done.set()
            self._dispatch()

    # -- drain -------------------------------------------------------------

    def drain(self, timeout_s: "float | None" = 60.0) -> dict:
        """Stop admitting, finish (or time out on) every job already
        admitted, join worker threads, and return the final service
        report."""
        with self._lock:
            self._draining = True
            jobs = list(self._jobs.values())
        self._check_crashed()
        self._dispatch()
        deadline = (
            None if timeout_s is None
            else time.perf_counter() + timeout_s
        )
        for job in jobs:
            self._wait_job(job, deadline, "drain")
        for thread in list(self._threads):
            thread.join(1.0)
        self._check_crashed()
        return self.to_report()

    def _wait_job(self, job: Job, deadline: "float | None",
                  what: str) -> None:
        """Wait for one job in short slices so a simulated process
        crash on a worker thread surfaces promptly to the caller
        (the crash, not a drain timeout, is the real story)."""
        while True:
            self._check_crashed()
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            slice_s = 0.05 if remaining is None else min(0.05, remaining)
            if job.done.wait(slice_s):
                return
            if remaining is not None and remaining <= slice_s:
                raise TimeoutError(
                    f"{what} timed out waiting on {job.job_id} "
                    f"({job.state})"
                )

    # -- recovery ----------------------------------------------------------

    def has_job(self, job_id: str) -> bool:
        """True when this incarnation knows the job (live, deduped
        from the journal, or re-admitted by recovery)."""
        with self._lock:
            return job_id in self._jobs

    def recover(self, timeout_s: "float | None" = 60.0,
                use_checkpoints: bool = True) -> dict:
        """Deterministic restart: re-admit every journaled job that
        never reached a terminal state, run each to completion
        (resuming from its latest valid checkpoint frame when
        ``use_checkpoints``, else from scratch), and return the
        ``repro.recover/1`` report. Completed/failed/cancelled jobs
        were already deduplicated at construction — replaying them is
        idempotent. Call it on a fresh service even over an empty
        journal; the report is then trivially empty."""
        self._check_crashed()
        counters = self.tracer.counters
        with self._lock:
            replays = list(self._to_recover)
            self._to_recover = []
        resumed: list = []
        for replay in replays:
            self.admission.register(replay.tenant, 1)
            with self._lock:
                job = Job(
                    job_id=replay.job_id,
                    tenant=replay.tenant,
                    source=replay.source,
                    entry=replay.entry,
                    args=replay.args or [],
                    app=replay.app,
                    filename=replay.filename,
                    clock=self.config.clock,
                )
                job.recovered = True
                job.crash_suppression = set(replay.crashes)
                job.recovery_mode = (
                    "checkpoint" if use_checkpoints else "scratch"
                )
                if replay.unrecoverable:
                    job.recovery_mode = "unrecoverable"
                    job.error = ConfigurationError(
                        f"job {job.job_id} cannot be recovered: its "
                        f"arguments were outside the wire format"
                    )
                    job.state = FAILED
                    job.done.set()
                    self._jobs[job.job_id] = job
                    self.journal.record_failed(job.job_id, job.error)
                    resumed.append(job)
                    continue
                # force=True: the job was admitted once already; a
                # depth bound must not drop it on restart.
                self.admission.enqueue(replay.tenant, job, force=True)
                self._jobs[job.job_id] = job
            self.journal.record_recovered(
                job.job_id, job.recovery_mode
            )
            counters.add("recover.resumed")
            try:
                compiled = self.session.compile_cached(
                    job.source, filename=job.filename
                )
            except LiquidMetalError as exc:
                job.compile_error = exc
            else:
                job.device_families = tuple(
                    family
                    for family in (
                        self.config.runtime.policy.device_order
                    )
                    if compiled.store.for_device(family)
                )
            resumed.append(job)
        self._dispatch()
        deadline = (
            None if timeout_s is None
            else time.perf_counter() + timeout_s
        )
        for job in resumed:
            self._wait_job(job, deadline, "recover")
        with self._lock:
            deduped = list(self._deduped)
            rejected = list(self._rejected_ids)
        recovered_rows = [
            {
                "job_id": job.job_id,
                "app": job.app,
                "tenant": job.tenant,
                "mode": job.recovery_mode,
                "state": job.state,
                "digest": job.digest,
                "crashes_suppressed": len(job.crash_suppression),
            }
            for job in resumed
        ]
        modes = [row["mode"] for row in recovered_rows]
        return {
            "schema": RECOVER_SCHEMA,
            "journal": {
                "path": self.journal.path,
                "records": self._journal_prior_records,
                "torn_bytes": self._journal_torn_bytes,
            },
            "deduped": deduped,
            "recovered": recovered_rows,
            "rejected": rejected,
            "totals": {
                "jobs": len(deduped) + len(recovered_rows),
                "deduped": len(deduped),
                "recovered": len(recovered_rows),
                "from_checkpoint": modes.count("checkpoint"),
                "from_scratch": modes.count("scratch"),
                "rejected": len(rejected),
            },
        }

    # -- report ------------------------------------------------------------

    def to_report(self) -> dict:
        """The machine-readable service report (``repro.service/1``)."""
        with self._lock:
            jobs = list(self._jobs.values())
            running = self._running
        rows = [job.describe() for job in jobs]
        by_state = {state: 0 for state in JOB_STATES}
        for row in rows:
            by_state[row["state"]] += 1
        by_tenant: dict = {}
        for row in rows:
            slot = by_tenant.setdefault(
                row["tenant"], {state: 0 for state in JOB_STATES}
            )
            slot[row["state"]] += 1
        tenants = []
        for tenant_row in self.admission.snapshot():
            counts = by_tenant.get(
                tenant_row["tenant"], {state: 0 for state in JOB_STATES}
            )
            tenants.append({**tenant_row, **{
                "completed": counts[COMPLETED],
                "failed": counts[FAILED],
                "cancelled": counts[CANCELLED],
            }})
        health_totals = self.health.to_report()["totals"]
        cfg = self.config
        return {
            "schema": SERVICE_SCHEMA,
            "config": {
                "gpu_slots": cfg.gpu_slots,
                "fpga_slots": cfg.fpga_slots,
                "max_running": cfg.max_running,
                "max_queue_depth": cfg.max_queue_depth,
                "scheduler": cfg.runtime.scheduler,
            },
            "tenants": tenants,
            "jobs": rows,
            "pool": self.pool.snapshot(),
            "admission": {
                "admitted": self.admission.total_admitted,
                "rejected": self.admission.total_rejected,
            },
            "health": health_totals,
            "totals": {
                "jobs": len(rows),
                "running": running,
                **by_state,
            },
        }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<CoExecutionService jobs={len(self._jobs)} "
                f"running={self._running} "
                f"draining={self._draining}>"
            )


# ---------------------------------------------------------------------------
# Report validation / rendering (the profile/health report pattern)
# ---------------------------------------------------------------------------

_REPORT_KEYS = (
    "schema", "config", "tenants", "jobs", "pool", "admission",
    "health", "totals",
)
_JOB_KEYS = ("job_id", "tenant", "app", "entry", "state", "leased")
_TENANT_KEYS = (
    "tenant", "weight", "queued", "submitted", "admitted", "rejected",
    "completed", "failed", "cancelled",
)


def validate_service_report(payload) -> list:
    """Schema check for a ``repro.service/1`` report; returns problem
    strings (empty = valid)."""
    problems: list = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SERVICE_SCHEMA:
        problems.append(
            f"schema must be {SERVICE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for key in _REPORT_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    jobs = payload.get("jobs", [])
    if not isinstance(jobs, list):
        problems.append("jobs must be a list")
        jobs = []
    for index, row in enumerate(jobs):
        where = f"jobs[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _JOB_KEYS:
            if key not in row:
                problems.append(f"{where} missing key {key!r}")
        if row.get("state") not in JOB_STATES:
            problems.append(
                f"{where} has unknown state {row.get('state')!r}"
            )
        if row.get("state") in (FAILED, CANCELLED):
            error = row.get("error")
            if not isinstance(error, dict) or "type" not in error:
                problems.append(
                    f"{where} is {row.get('state')} but has no typed "
                    f"error record"
                )
    for index, row in enumerate(payload.get("tenants", []) or []):
        where = f"tenants[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _TENANT_KEYS:
            if key not in row:
                problems.append(f"{where} missing key {key!r}")
    totals = payload.get("totals")
    if isinstance(totals, dict):
        if totals.get("jobs") != len(jobs):
            problems.append("totals.jobs disagrees with the jobs list")
        counted = sum(
            totals.get(state, 0) for state in JOB_STATES
        )
        if counted != len(jobs):
            problems.append(
                "totals per-state counts do not sum to totals.jobs"
            )
    elif "totals" in payload:
        problems.append("totals must be an object")
    pool = payload.get("pool")
    if isinstance(pool, dict):
        in_use = pool.get("in_use", {})
        quiescent = (
            isinstance(totals, dict)
            and totals.get("running", 0) == 0
            and totals.get(QUEUED, 0) == 0
        )
        if quiescent and any(v != 0 for v in in_use.values()):
            problems.append(
                f"leaked device leases: pool.in_use={in_use} with no "
                f"running or queued jobs"
            )
    elif "pool" in payload:
        problems.append("pool must be an object")
    return problems


def validate_service_file(path: str) -> dict:
    """Load and validate a service report; raises on problems."""
    import json

    with open(path) as f:
        payload = json.load(f)
    problems = validate_service_report(payload)
    if problems:
        raise ConfigurationError(
            f"service report {path} is invalid: " + "; ".join(problems)
        )
    return payload


def render_service_report(report: dict) -> str:
    """The human-readable form of a service report (CLI default)."""
    lines = []
    cfg = report.get("config", {})
    lines.append(
        "co-execution service — {s} scheduler, pool gpu={g} fpga={f}, "
        "max_running={r}, queue_depth<={q}".format(
            s=cfg.get("scheduler", "?"),
            g=cfg.get("gpu_slots", "?"),
            f=cfg.get("fpga_slots", "?"),
            r=cfg.get("max_running", "?"),
            q=cfg.get("max_queue_depth", "?"),
        )
    )
    lines.append("")
    for row in report.get("tenants", []):
        lines.append(
            "tenant {t} (w={w}): submitted={s} admitted={a} "
            "rejected={j} completed={c} failed={f} cancelled={x}".format(
                t=row.get("tenant"),
                w=row.get("weight"),
                s=row.get("submitted"),
                a=row.get("admitted"),
                j=row.get("rejected"),
                c=row.get("completed"),
                f=row.get("failed"),
                x=row.get("cancelled"),
            )
        )
    lines.append("")
    for row in report.get("jobs", []):
        extra = ""
        if "simulated_s" in row:
            extra = f"  {row['simulated_s'] * 1e3:.6g}ms"
        if "error" in row:
            extra = f"  {row['error']['type']}: {row['error']['message']}"
        lines.append(
            f"{row['job_id']}  {row['tenant']:<6} {row['app']:<16} "
            f"[{row['state'].upper()}]{extra}"
        )
    pool = report.get("pool", {})
    lines.append("")
    lines.append(
        "pool: slots={slots} peak={peak} in_use={in_use} "
        "granted={granted} denied={denied}".format(
            slots=pool.get("slots"),
            peak=pool.get("peak"),
            in_use=pool.get("in_use"),
            granted=pool.get("granted"),
            denied=pool.get("denied"),
        )
    )
    totals = report.get("totals", {})
    health = report.get("health", {})
    lines.append(
        "totals: {n} job(s) — {c} completed, {f} failed, {x} cancelled; "
        "admission {a} admitted / {r} rejected; health: {b} breaker(s), "
        "{t} trip(s), {p} re-promotion(s)".format(
            n=totals.get("jobs", 0),
            c=totals.get(COMPLETED, 0),
            f=totals.get(FAILED, 0),
            x=totals.get(CANCELLED, 0),
            a=report.get("admission", {}).get("admitted", 0),
            r=report.get("admission", {}).get("rejected", 0),
            b=health.get("breakers", 0),
            t=health.get("trips", 0),
            p=health.get("repromotions", 0),
        )
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Deterministic multi-tenant driver (CLI `serve` / make serve-smoke)
# ---------------------------------------------------------------------------

#: Apps the driver cycles through — light, deterministic workloads
#: spanning stream/map/reduce flavors and both device families.
DRIVER_APPS = (
    "bitflip",
    "gray_pipeline",
    "parity",
    "crc8",
    "running_sum",
    "saxpy",
    "vector_sum",
    "convolution",
)


def run_service_driver(
    tenants: int = 3,
    jobs_per_tenant: int = 8,
    gpu_slots: int = 2,
    fpga_slots: int = 1,
    max_running: int = 4,
    max_queue_depth: int = 8,
    scheduler: str = "sequential",
    fault_plan=None,
    stage_timeout_s: "float | None" = 10.0,
    verify: bool = False,
    tracer=None,
) -> dict:
    """Drive a service deterministically: ``tenants`` tenants (weights
    cycling 1,2,3) each submit ``jobs_per_tenant`` jobs cycling over
    :data:`DRIVER_APPS`, then the service drains. Saturation is
    handled honestly: an :class:`AdmissionRejected` submission waits
    for this tenant's oldest unfinished job and retries.

    With ``verify=True`` every completed job is compared against a
    standalone fault-free run of the same app on the same scheduler:
    values and printed output must match bit-identically, and — when
    the driver itself runs fault-free — simulated seconds too. The
    returned ``repro.service/1`` report gains a ``driver`` section
    with the verification tally; mismatches raise.
    """
    from repro.apps import SUITE, workloads

    runtime = RuntimeConfig(
        scheduler=scheduler,
        fault_plan=fault_plan,
        stage_timeout_s=(
            stage_timeout_s if scheduler == "threaded" else None
        ),
    )
    if tracer is not None:
        runtime = runtime.with_overrides(tracer=tracer)
    service = CoExecutionService(ServiceConfig(
        gpu_slots=gpu_slots,
        fpga_slots=fpga_slots,
        max_running=max_running,
        max_queue_depth=max_queue_depth,
        runtime=runtime,
    ))
    for i in range(tenants):
        service.register_tenant(f"t{i}", weight=(i % 3) + 1)

    submitted: list = []        # (job_id, app, tenant)
    pending_by_tenant: dict = {f"t{i}": [] for i in range(tenants)}
    cycle = 0
    for _ in range(jobs_per_tenant):
        for i in range(tenants):
            tenant = f"t{i}"
            app = DRIVER_APPS[cycle % len(DRIVER_APPS)]
            cycle += 1
            entry, args = workloads.small_args(app)
            while True:
                try:
                    job_id = service.submit(
                        SUITE[app].source,
                        entry,
                        args,
                        tenant=tenant,
                        app=app,
                        filename=f"<{app}.lime>",
                    )
                    submitted.append((job_id, app, tenant))
                    pending_by_tenant[tenant].append(job_id)
                    break
                except AdmissionRejected:
                    # Honest backpressure: wait out the oldest job we
                    # have in flight for this tenant, then retry.
                    waiting = pending_by_tenant[tenant]
                    if not waiting:
                        raise
                    service.result(waiting.pop(0), timeout_s=60.0)

    report = service.drain()

    if verify:
        solo_cache: dict = {}
        checked = 0
        for job_id, app, _tenant in submitted:
            outcome = service.result(job_id)
            if app not in solo_cache:
                entry, args = workloads.small_args(app)
                compiled = service.session.compile_cached(
                    SUITE[app].source, filename=f"<{app}.lime>"
                )
                solo = Runtime(
                    compiled, RuntimeConfig(scheduler=scheduler)
                ).run(entry, args)
                solo_cache[app] = solo
            solo = solo_cache[app]
            if repr(outcome.value) != repr(solo.value):
                raise LiquidMetalError(
                    f"{job_id} ({app}): concurrent value diverged "
                    f"from the standalone run"
                )
            if outcome.output != solo.output:
                raise LiquidMetalError(
                    f"{job_id} ({app}): concurrent output diverged "
                    f"from the standalone run"
                )
            if fault_plan is None and (
                outcome.ledger.total_s != solo.ledger.total_s
            ):
                raise LiquidMetalError(
                    f"{job_id} ({app}): simulated seconds diverged "
                    f"({outcome.ledger.total_s} != "
                    f"{solo.ledger.total_s})"
                )
            checked += 1
        report["driver"] = {
            "verified_jobs": checked,
            "apps": sorted(solo_cache),
            "timing_checked": fault_plan is None,
        }
    return report


# ---------------------------------------------------------------------------
# Deterministic crash/restart driver (CLI `recover` / make recover-smoke)
# ---------------------------------------------------------------------------


def run_recovery_driver(
    journal_dir: str,
    jobs: int = 6,
    scheduler: str = "sequential",
    seed: int = 1,
    crash_call: int = 3,
    checkpoint_interval: int = 2,
    batch_size: int = 8,
    use_checkpoints: bool = True,
    gpu_slots: int = 2,
    fpga_slots: int = 1,
    max_running: int = 2,
    max_restarts: int = 32,
    stage_timeout_s: "float | None" = 10.0,
    tracer=None,
) -> dict:
    """Submit ``jobs`` jobs against a journaled service under a seeded
    crash schedule (each job's injector fires a ``crash`` fault at its
    ``crash_call``-th device consult), then crash-and-restart the
    service in a loop — recover the journal, resubmit whatever was
    never journaled, drain — until a pass completes with no crash.

    Every job's outcome digest is then verified bit-identical to a
    standalone uninterrupted baseline: the same app under the same
    fault plan with every crash suppressed (the suppression burns the
    same fire budget and RNG draws the recovered runs burn, so fault
    logs align too). The returned ``repro.recover/1`` report gains a
    ``driver`` section; a divergence or non-convergence raises.
    """
    from repro.apps import SUITE, workloads
    from repro.runtime.faults import (
        FaultInjector,
        FaultPlan,
        FaultSpec,
    )

    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    plan = FaultPlan(
        [FaultSpec(site="device", error="crash", target="*",
                   on_calls=(crash_call,))],
        seed=seed,
    )
    slots = []
    for index in range(jobs):
        app = DRIVER_APPS[index % len(DRIVER_APPS)]
        entry, args = workloads.small_args(app)
        slots.append({
            # Wire-canonical arguments: exactly what the journaled
            # service executes, so the uninterrupted baselines below
            # see the same inputs a recovered re-run sees.
            "app": app, "entry": entry,
            "args": canonical_args(args),
            "tenant": f"t{index % 3}", "job_id": None,
        })

    def build_service() -> CoExecutionService:
        # Small marshaling batches split each stream across several
        # device decision points, so the seeded crash lands mid-stream
        # and checkpoint frames exist to resume from. The baselines
        # below use the same sizes — batch size is visible to the
        # injector's call stream, so it is part of the determinism
        # contract.
        runtime = RuntimeConfig(
            scheduler=scheduler,
            fault_plan=plan,
            batch_size=batch_size,
            device_batch_size=batch_size,
            stage_timeout_s=(
                stage_timeout_s if scheduler == "threaded" else None
            ),
        )
        if tracer is not None:
            runtime = runtime.with_overrides(tracer=tracer)
        return CoExecutionService(ServiceConfig(
            gpu_slots=gpu_slots,
            fpga_slots=fpga_slots,
            max_running=max_running,
            max_queue_depth=max(jobs, 8),
            runtime=runtime,
            journal_dir=journal_dir,
            checkpoint_interval=checkpoint_interval,
        ))

    restarts = 0
    from_checkpoint = 0
    from_scratch = 0
    service = None
    report = None
    while True:
        service = build_service()
        try:
            report = service.recover(use_checkpoints=use_checkpoints)
            from_checkpoint += report["totals"]["from_checkpoint"]
            from_scratch += report["totals"]["from_scratch"]
            for slot in slots:
                if slot["job_id"] is not None and service.has_job(
                    slot["job_id"]
                ):
                    continue
                slot["job_id"] = service.submit(
                    SUITE[slot["app"]].source,
                    slot["entry"],
                    slot["args"],
                    tenant=slot["tenant"],
                    app=slot["app"],
                    filename=f"<{slot['app']}.lime>",
                )
            service.drain()
        except ProcessCrash:
            restarts += 1
            if restarts > max_restarts:
                raise LiquidMetalError(
                    f"recovery did not converge after {max_restarts} "
                    f"restarts (crash schedule seed={seed})"
                )
            continue
        break

    # Uninterrupted baselines: same plan, every crash suppressed.
    solo_digests: dict = {}
    verified = 0
    for slot in slots:
        app = slot["app"]
        if app not in solo_digests:
            injector = FaultInjector(plan)
            injector.suppress_all_crashes = True
            compiled = service.session.compile_cached(
                SUITE[app].source, filename=f"<{app}.lime>"
            )
            solo = Runtime(
                compiled,
                RuntimeConfig(
                    scheduler=scheduler,
                    fault_plan=injector,
                    batch_size=batch_size,
                    device_batch_size=batch_size,
                ),
            ).run(slot["entry"], slot["args"])
            solo_digests[app] = outcome_digest(
                solo.value,
                solo.output,
                solo.ledger.total_s,
                fault_log_payload(injector.log),
            )
        row = service.status(slot["job_id"])
        if row["state"] != COMPLETED:
            raise LiquidMetalError(
                f"{slot['job_id']} ({app}) finished {row['state']!r} "
                f"after recovery; expected completed"
            )
        if row.get("digest") != solo_digests[app]:
            raise LiquidMetalError(
                f"{slot['job_id']} ({app}): recovered digest "
                f"{row.get('digest')} diverged from the uninterrupted "
                f"baseline {solo_digests[app]}"
            )
        verified += 1
    report["driver"] = {
        "jobs": jobs,
        "scheduler": scheduler,
        "seed": seed,
        "crash_call": crash_call,
        "restarts": restarts,
        "verified_jobs": verified,
        "checkpoint_resumes": from_checkpoint,
        "scratch_resumes": from_scratch,
        "use_checkpoints": use_checkpoints,
        "apps": sorted({slot["app"] for slot in slots}),
    }
    return report
