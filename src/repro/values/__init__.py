"""Runtime value model for Lime: bits, value arrays, enums, wire format."""

from repro.values.arrays import MutableArray, ValueArray
from repro.values.base import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Kind,
    array_kind,
    default_value,
    enum_kind,
    is_value,
    kind_of,
)
from repro.values.bits import (
    Bit,
    bits_to_int,
    format_bit_literal,
    int_to_bits,
    parse_bit_literal,
)
from repro.values.enums import EnumDescriptor, EnumValue
from repro.values.marshal import (
    Serializer,
    deserialize,
    serialize,
    serializer_for,
)

__all__ = [
    "Bit",
    "EnumDescriptor",
    "EnumValue",
    "Kind",
    "KIND_BIT",
    "KIND_BOOLEAN",
    "KIND_DOUBLE",
    "KIND_FLOAT",
    "KIND_INT",
    "KIND_LONG",
    "MutableArray",
    "Serializer",
    "ValueArray",
    "array_kind",
    "bits_to_int",
    "default_value",
    "deserialize",
    "enum_kind",
    "format_bit_literal",
    "int_to_bits",
    "is_value",
    "kind_of",
    "parse_bit_literal",
    "serialize",
    "serializer_for",
]
