"""Runtime value model for Lime: bits, value arrays, enums, wire format."""

from repro.values.arrays import MutableArray, ValueArray
from repro.values.base import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Kind,
    array_kind,
    default_value,
    enum_kind,
    is_value,
    kind_of,
)
from repro.values.bits import (
    Bit,
    bits_to_int,
    format_bit_literal,
    int_to_bits,
    parse_bit_literal,
)
from repro.values.bufpool import DEFAULT_POOL, BufferPool
from repro.values.enums import EnumDescriptor, EnumValue
from repro.values.marshal import (
    Serializer,
    batch_count,
    batch_kind,
    deserialize,
    deserialize_batch,
    infer_batch_kind,
    serialize,
    serialize_batch,
    serializer_for,
)

__all__ = [
    "Bit",
    "BufferPool",
    "DEFAULT_POOL",
    "EnumDescriptor",
    "EnumValue",
    "Kind",
    "KIND_BIT",
    "KIND_BOOLEAN",
    "KIND_DOUBLE",
    "KIND_FLOAT",
    "KIND_INT",
    "KIND_LONG",
    "MutableArray",
    "Serializer",
    "ValueArray",
    "array_kind",
    "batch_count",
    "batch_kind",
    "bits_to_int",
    "default_value",
    "deserialize",
    "deserialize_batch",
    "enum_kind",
    "format_bit_literal",
    "infer_batch_kind",
    "int_to_bits",
    "is_value",
    "kind_of",
    "parse_bit_literal",
    "serialize",
    "serialize_batch",
    "serializer_for",
]
