"""Lime arrays: immutable value arrays ``T[[]]`` and ordinary ``T[]``.

Only *values* may flow between tasks (Section 2.2), so the marshaling
layer and the task connect operator accept :class:`ValueArray` but never
:class:`MutableArray`. ``new bit[[]](result)`` in Figure 1 corresponds
to :meth:`ValueArray.from_mutable`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ValueSemanticsError
from repro.values.base import Kind, default_value
from repro.values.bits import Bit, format_bit_literal


def _coerce_element(kind: Kind, element: object) -> object:
    """Normalize a Python object to the canonical runtime form of ``kind``.

    This keeps arrays homogeneous: ints stay ints, floats become floats
    even when written as int literals, bits accept 0/1, and nested value
    arrays are passed through after a type check.
    """
    if kind.name in ("int", "long"):
        if isinstance(element, bool) or not isinstance(element, int):
            raise ValueSemanticsError(
                f"expected {kind} element, got {element!r}"
            )
        return element
    if kind.name in ("float", "double"):
        if isinstance(element, bool) or not isinstance(
            element, (int, float)
        ):
            raise ValueSemanticsError(
                f"expected {kind} element, got {element!r}"
            )
        return float(element)
    if kind.name == "boolean":
        if not isinstance(element, bool):
            raise ValueSemanticsError(
                f"expected boolean element, got {element!r}"
            )
        return element
    if kind.name == "bit":
        if isinstance(element, Bit):
            return element
        if element in (0, 1):
            return Bit(int(element))
        raise ValueSemanticsError(f"expected bit element, got {element!r}")
    if kind.is_enum:
        from repro.values.enums import EnumValue

        if (
            isinstance(element, EnumValue)
            and element.enum_name == kind.enum_name
        ):
            return element
        raise ValueSemanticsError(
            f"expected {kind} element, got {element!r}"
        )
    if kind.is_array:
        if isinstance(element, ValueArray) and element.element_kind == kind.element:
            return element
        if isinstance(element, MutableArray) and element.element_kind == kind.element:
            return element.freeze()
        raise ValueSemanticsError(
            f"expected {kind} element, got {element!r}"
        )
    raise ValueSemanticsError(f"unsupported element kind {kind}")


class ValueArray(Sequence):
    """An immutable, homogeneous Lime value array (``T[[]]``).

    Instances are deeply immutable: elements are themselves values
    (nested mutable arrays are frozen on construction). Equality and
    hashing are structural, so value arrays can be dictionary keys —
    which the artifact store exploits.
    """

    __slots__ = ("_kind", "_items")

    def __init__(self, element_kind: Kind, items: Iterable[object]):
        object.__setattr__(self, "_kind", element_kind)
        object.__setattr__(
            self,
            "_items",
            tuple(_coerce_element(element_kind, x) for x in items),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise ValueSemanticsError("value arrays are immutable")

    @property
    def element_kind(self) -> Kind:
        return self._kind

    @property
    def length(self) -> int:
        """Lime's ``.length`` property."""
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return ValueArray(self._kind, self._items[index])
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueArray):
            return NotImplemented
        return self._kind == other._kind and self._items == other._items

    def __hash__(self) -> int:
        return hash((self._kind, self._items))

    def __repr__(self) -> str:
        if self._kind.name == "bit":
            return format_bit_literal(self._items)
        inner = ", ".join(repr(x) for x in self._items)
        return f"{self._kind}[[{inner}]]"

    def map(self, fn: Callable[[object], object], result_kind: Kind) -> "ValueArray":
        """Elementwise application — host-side semantics of Lime ``@``."""
        return ValueArray(result_kind, (fn(x) for x in self._items))

    def reduce(self, fn: Callable[[object, object], object]) -> object:
        """Left fold without initial element — semantics of Lime ``!``.

        Reducing an empty array is an error, matching Lime's requirement
        that reduce operands be non-empty.
        """
        if not self._items:
            raise ValueSemanticsError("reduce of empty value array")
        acc = self._items[0]
        for x in self._items[1:]:
            acc = fn(acc, x)
        return acc

    def thaw(self) -> "MutableArray":
        """A fresh mutable copy (``T[]``) with the same contents."""
        return MutableArray(self._kind, list(self._items))

    @classmethod
    def from_mutable(cls, array: "MutableArray") -> "ValueArray":
        """Lime's ``new T[[]](mutableArray)`` conversion (Figure 1, line 21)."""
        return cls(array.element_kind, array.snapshot())

    @classmethod
    def of_bits(cls, bits: Iterable[object]) -> "ValueArray":
        from repro.values.base import KIND_BIT

        return cls(KIND_BIT, bits)


class MutableArray:
    """An ordinary Lime array ``T[]`` — mutable, not a value.

    ``new bit[n]`` produces a MutableArray of default-valued elements.
    Mutable arrays never cross the task boundary; the sink task writes
    into one on the host side (Figure 1, lines 16–19).
    """

    __slots__ = ("_kind", "_items")

    def __init__(self, element_kind: Kind, items: Iterable[object]):
        self._kind = element_kind
        self._items = [_coerce_element(element_kind, x) for x in items]

    @classmethod
    def allocate(cls, element_kind: Kind, length: int) -> "MutableArray":
        """``new T[length]`` — default-initialized."""
        if length < 0:
            raise ValueSemanticsError("negative array length")
        fill = default_value(element_kind)
        return cls(element_kind, [fill] * length)

    @property
    def element_kind(self) -> Kind:
        return self._kind

    @property
    def length(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def __getitem__(self, index: int) -> object:
        return self._items[index]

    def __setitem__(self, index: int, value: object) -> None:
        self._items[index] = _coerce_element(self._kind, value)

    def snapshot(self) -> tuple:
        """An immutable copy of the current contents."""
        return tuple(self._items)

    def freeze(self) -> ValueArray:
        """Convert to a value array (deep copy of contents)."""
        return ValueArray(self._kind, self._items)

    def __repr__(self) -> str:
        inner = ", ".join(repr(x) for x in self._items)
        return f"{self._kind}[{inner}]"
