"""Runtime representation of Lime *kinds* and value semantics.

Lime's type system distinguishes *value* types — recursively immutable —
from ordinary (mutable) types. At run time the reproduction represents:

* ``int``, ``long`` as Python :class:`int` (range-checked on marshaling),
* ``float``, ``double`` as Python :class:`float`,
* ``boolean`` as Python :class:`bool`,
* ``bit`` as :class:`repro.values.bits.Bit`,
* user value enums as :class:`repro.values.enums.EnumValue`,
* value arrays ``T[[]]`` as :class:`repro.values.arrays.ValueArray`,
* ordinary arrays ``T[]`` as :class:`repro.values.arrays.MutableArray`.

A *kind* is the runtime type descriptor used by the marshaling layer and
device backends. Kinds are deliberately simpler than the static types in
:mod:`repro.lime.types`: they only describe data layout.
"""

from __future__ import annotations

from dataclasses import dataclass

# Scalar kind names. These are the only strings accepted as the ``name``
# of a scalar Kind; anything else is an enum or array kind.
INT = "int"
LONG = "long"
FLOAT = "float"
DOUBLE = "double"
BOOLEAN = "boolean"
BIT = "bit"

SCALAR_KINDS = (INT, LONG, FLOAT, DOUBLE, BOOLEAN, BIT)

# Width in bits of each scalar kind on the wire (Figure 3's byte-stream
# format densely packs these).
SCALAR_BITS = {
    INT: 32,
    LONG: 64,
    FLOAT: 32,
    DOUBLE: 64,
    BOOLEAN: 8,
    BIT: 1,
}

INT_MIN, INT_MAX = -(2**31), 2**31 - 1
LONG_MIN, LONG_MAX = -(2**63), 2**63 - 1


@dataclass(frozen=True)
class Kind:
    """A runtime data-layout descriptor.

    ``name`` is one of the scalar kind names, ``"enum"``, or ``"array"``.
    For enums, ``enum_name`` holds the declaring type's name and
    ``enum_size`` the number of constants. For arrays, ``element``
    holds the element kind (arrays of arrays are supported).
    """

    name: str
    enum_name: str | None = None
    enum_size: int = 0
    element: "Kind | None" = None

    def __post_init__(self) -> None:
        if self.name == "enum" and not self.enum_name:
            raise ValueError("enum kind requires enum_name")
        if self.name == "array" and self.element is None:
            raise ValueError("array kind requires an element kind")
        if (
            self.name not in SCALAR_KINDS
            and self.name not in ("enum", "array")
        ):
            raise ValueError(f"unknown kind name: {self.name!r}")

    @property
    def is_scalar(self) -> bool:
        return self.name in SCALAR_KINDS

    @property
    def is_array(self) -> bool:
        return self.name == "array"

    @property
    def is_enum(self) -> bool:
        return self.name == "enum"

    def wire_bits(self) -> int:
        """Bits needed for one element of this kind on the wire."""
        if self.is_scalar:
            return SCALAR_BITS[self.name]
        if self.is_enum:
            # Enums travel as one byte per constant ordinal; Lime enums
            # in practice are tiny (bit has 2 constants).
            return 8
        raise ValueError(f"{self} has no fixed wire width")

    def __str__(self) -> str:
        if self.is_enum:
            return f"enum {self.enum_name}"
        if self.is_array:
            return f"{self.element}[[]]"
        return self.name


# Convenience singletons for the scalar kinds.
KIND_INT = Kind(INT)
KIND_LONG = Kind(LONG)
KIND_FLOAT = Kind(FLOAT)
KIND_DOUBLE = Kind(DOUBLE)
KIND_BOOLEAN = Kind(BOOLEAN)
KIND_BIT = Kind(BIT)


def array_kind(element: Kind) -> Kind:
    """Kind describing a value array with the given element kind."""
    return Kind("array", element=element)


def enum_kind(enum_name: str, enum_size: int) -> Kind:
    """Kind describing a user value enum."""
    return Kind("enum", enum_name=enum_name, enum_size=enum_size)


def kind_of(value: object) -> Kind:
    """Infer the runtime kind of a Python-level Lime value.

    Booleans must be tested before ints because ``bool`` subclasses
    ``int`` in Python.
    """
    from repro.values.arrays import MutableArray, ValueArray
    from repro.values.bits import Bit
    from repro.values.enums import EnumValue

    if isinstance(value, Bit):
        return KIND_BIT
    if isinstance(value, bool):
        return KIND_BOOLEAN
    if isinstance(value, int):
        return KIND_INT if INT_MIN <= value <= INT_MAX else KIND_LONG
    if isinstance(value, float):
        return KIND_DOUBLE
    if isinstance(value, EnumValue):
        return enum_kind(value.enum_name, value.enum_size)
    if isinstance(value, (ValueArray, MutableArray)):
        return array_kind(value.element_kind)
    raise ValueError(f"not a Lime runtime value: {value!r}")


def is_value(obj: object) -> bool:
    """True if ``obj`` is a legal Lime *value* (recursively immutable).

    Mutable arrays are not values; everything else we model is.
    """
    from repro.values.arrays import MutableArray, ValueArray
    from repro.values.bits import Bit
    from repro.values.enums import EnumValue

    if isinstance(obj, (bool, int, float, Bit, EnumValue)):
        return True
    if isinstance(obj, ValueArray):
        # ValueArray construction already freezes elements recursively,
        # but re-check to keep the predicate trustworthy on its own.
        return all(is_value(element) for element in obj)
    if isinstance(obj, MutableArray):
        return False
    return False


def default_value(kind: Kind) -> object:
    """The Lime default (zero) value for a kind, used by ``new T[n]``."""
    from repro.values.bits import Bit
    from repro.values.enums import EnumValue

    if kind.name in (INT, LONG):
        return 0
    if kind.name in (FLOAT, DOUBLE):
        return 0.0
    if kind.name == BOOLEAN:
        return False
    if kind.name == BIT:
        return Bit.ZERO
    if kind.is_enum:
        return EnumValue(kind.enum_name, 0, kind.enum_size)
    if kind.is_array:
        from repro.values.arrays import ValueArray

        return ValueArray(kind.element, ())
    raise ValueError(f"no default for kind {kind}")
