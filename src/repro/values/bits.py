"""The Lime ``bit`` type and bit literals.

Figure 1 of the paper defines ``bit`` as a value enum with constants
``zero`` and ``one`` and an unary ``~`` method. Bit data is a first-class
citizen in Lime because of its prevalence in FPGA designs; the language
provides *bit literals* such as ``100b`` — a 3-bit array with
``bit[0] = 0`` and ``bit[2] = 1`` (i.e. the literal is written MSB
first, and indexing is LSB first).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ValueSemanticsError


class Bit:
    """An immutable single bit. Exactly two instances exist.

    ``Bit.ZERO`` and ``Bit.ONE`` are interned; identity comparison is
    therefore safe, though ``==`` is also defined. ``~b`` flips the bit,
    mirroring the ``~`` operator method in the paper's Figure 1.
    """

    __slots__ = ("_v",)
    ZERO: "Bit"
    ONE: "Bit"
    _interned: "dict[int, Bit]" = {}

    def __new__(cls, v: int) -> "Bit":
        v = int(v) & 1
        cached = cls._interned.get(v)
        if cached is not None:
            return cached
        obj = super().__new__(cls)
        object.__setattr__(obj, "_v", v)
        cls._interned[v] = obj
        return obj

    def __setattr__(self, name: str, value: object) -> None:
        raise ValueSemanticsError("bit values are immutable")

    def __reduce__(self):
        # Interned singletons round-trip through pickle via __new__.
        return (Bit, (self._v,))

    def __int__(self) -> int:
        return self._v

    def __bool__(self) -> bool:
        return bool(self._v)

    def __invert__(self) -> "Bit":
        return Bit(1 - self._v)

    def __and__(self, other: "Bit") -> "Bit":
        return Bit(self._v & int(other))

    def __or__(self, other: "Bit") -> "Bit":
        return Bit(self._v | int(other))

    def __xor__(self, other: "Bit") -> "Bit":
        return Bit(self._v ^ int(other))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bit):
            return self._v == other._v
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("bit", self._v))

    def __repr__(self) -> str:
        return "one" if self._v else "zero"

    @property
    def ordinal(self) -> int:
        """Ordinal within the ``bit`` enum: zero = 0, one = 1."""
        return self._v


Bit.ZERO = Bit(0)
Bit.ONE = Bit(1)


def parse_bit_literal(text: str) -> "tuple[Bit, ...]":
    """Parse a Lime bit literal body (without validation of the suffix).

    ``"100"`` -> (zero, zero, one): the literal is written most
    significant bit first, but element 0 of the resulting array is the
    least significant bit, exactly as the paper specifies for ``100b``.
    """
    if not text or any(c not in "01" for c in text):
        raise ValueError(f"malformed bit literal: {text!r}b")
    return tuple(Bit(int(c)) for c in reversed(text))


def format_bit_literal(bits: Iterable[Bit]) -> str:
    """Format a sequence of bits back into literal notation (MSB first)."""
    seq = list(bits)
    return "".join("1" if b else "0" for b in reversed(seq)) + "b"


def bits_to_int(bits: Iterable[Bit]) -> int:
    """Interpret a bit sequence (LSB first) as an unsigned integer."""
    total = 0
    for i, b in enumerate(bits):
        total |= int(b) << i
    return total


def int_to_bits(value: int, width: int) -> "tuple[Bit, ...]":
    """Lowest ``width`` bits of ``value``, LSB first."""
    if width < 0:
        raise ValueError("width must be non-negative")
    return tuple(Bit((value >> i) & 1) for i in range(width))


def pack_bits(bits: Iterable[Bit]) -> bytes:
    """Densely pack bits (LSB-first within each byte) for the wire."""
    out = bytearray()
    acc = 0
    n = 0
    for b in bits:
        acc |= int(b) << (n % 8)
        n += 1
        if n % 8 == 0:
            out.append(acc)
            acc = 0
    if n % 8:
        out.append(acc)
    return bytes(out)


def unpack_bits(data: bytes, count: int) -> "tuple[Bit, ...]":
    """Inverse of :func:`pack_bits` for a known bit count."""
    if count > len(data) * 8:
        raise ValueError("not enough bytes for requested bit count")
    return tuple(
        Bit((data[i // 8] >> (i % 8)) & 1) for i in range(count)
    )
