"""A reusable buffer pool for batched wire serialization.

Section 4.3's crossing carries a byte stream; the dominant avoidable
cost on a managed host is allocating a fresh staging buffer per
transfer. A real JNI runtime keeps a small set of direct byte buffers
alive and reuses them across crossings — this module is that pool for
the Python reproduction: :func:`repro.values.marshal.serialize_batch`
acquires a staging ``bytearray`` from a :class:`BufferPool`, assembles
the batch frame in place, and releases the buffer for the next batch.

The pool is deliberately small and boring: size-classed free lists
(powers of two) under one lock, with hit/miss statistics so tests and
the benchmark harness can observe reuse. Buffers returned by
:meth:`acquire` are always empty (length zero); callers append and
take an immutable snapshot before releasing.
"""

from __future__ import annotations

import threading


def _size_class(n: int) -> int:
    """Smallest power-of-two class holding ``n`` bytes (min 256)."""
    size = 256
    while size < n:
        size <<= 1
    return size


class BufferPool:
    """Size-classed pool of reusable ``bytearray`` staging buffers."""

    def __init__(self, max_per_class: int = 8, max_class_bytes: int = 1 << 24):
        if max_per_class < 0:
            raise ValueError("max_per_class must be >= 0")
        self.max_per_class = max_per_class
        #: Buffers for requests above this size are never pooled.
        self.max_class_bytes = max_class_bytes
        self._lock = threading.Lock()
        self._free: dict[int, list[bytearray]] = {}
        self.hits = 0
        self.misses = 0
        self.releases = 0

    def acquire(self, size_hint: int = 0) -> bytearray:
        """An empty staging buffer expected to grow to ``size_hint``.

        The returned ``bytearray`` has length zero; reuse shows up as
        retained allocation capacity on the CPython side and as a
        ``hits`` increment on the pool."""
        cls = _size_class(max(size_hint, 0))
        with self._lock:
            free = self._free.get(cls)
            if free:
                self.hits += 1
                return free.pop()
            self.misses += 1
        return bytearray()

    def release(self, buffer: bytearray, size_hint: int = 0) -> None:
        """Return a staging buffer to the pool (contents discarded)."""
        if not isinstance(buffer, bytearray):
            return
        cls = _size_class(max(size_hint, len(buffer)))
        if cls > self.max_class_bytes:
            return  # oversized one-offs are not worth retaining
        del buffer[:]
        with self._lock:
            free = self._free.setdefault(cls, [])
            if len(free) < self.max_per_class:
                free.append(buffer)
                self.releases += 1

    def clear(self) -> None:
        with self._lock:
            self._free.clear()

    @property
    def pooled_buffers(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._free.values())

    def stats(self) -> dict:
        """Point-in-time reuse statistics."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "releases": self.releases,
                "pooled": sum(len(v) for v in self._free.values()),
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<BufferPool {s['pooled']} pooled, "
            f"{s['hits']} hits / {s['misses']} misses>"
        )


#: Process-wide default pool used by ``serialize_batch`` when no pool
#: is passed explicitly.
DEFAULT_POOL = BufferPool()
