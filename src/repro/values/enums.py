"""Runtime representation of user-declared Lime value enums.

Unlike Java enums, Lime value enums are immutable (Figure 1, lines 1–6).
The compiler represents each constant as an :class:`EnumValue` carrying
its declaring enum's name, its ordinal, and the enum's size — enough for
marshaling without a global registry, while :class:`EnumDescriptor`
gives the runtime access to constant names for printing.
"""

from __future__ import annotations

from repro.errors import ValueSemanticsError


class EnumValue:
    """One constant of a value enum; immutable and interned per (name, ordinal)."""

    __slots__ = ("_enum_name", "_ordinal", "_enum_size")
    _interned: "dict[tuple[str, int, int], EnumValue]" = {}

    def __new__(cls, enum_name: str, ordinal: int, enum_size: int) -> "EnumValue":
        key = (enum_name, ordinal, enum_size)
        cached = cls._interned.get(key)
        if cached is not None:
            return cached
        if not 0 <= ordinal < enum_size:
            raise ValueSemanticsError(
                f"ordinal {ordinal} out of range for enum {enum_name}"
                f" of size {enum_size}"
            )
        obj = super().__new__(cls)
        object.__setattr__(obj, "_enum_name", enum_name)
        object.__setattr__(obj, "_ordinal", ordinal)
        object.__setattr__(obj, "_enum_size", enum_size)
        cls._interned[key] = obj
        return obj

    def __setattr__(self, name: str, value: object) -> None:
        raise ValueSemanticsError("enum values are immutable")

    def __reduce__(self):
        return (EnumValue, (self._enum_name, self._ordinal, self._enum_size))

    @property
    def enum_name(self) -> str:
        return self._enum_name

    @property
    def ordinal(self) -> int:
        return self._ordinal

    @property
    def enum_size(self) -> int:
        return self._enum_size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnumValue):
            return NotImplemented
        return (
            self._enum_name == other._enum_name
            and self._ordinal == other._ordinal
        )

    def __hash__(self) -> int:
        return hash((self._enum_name, self._ordinal))

    def __repr__(self) -> str:
        return f"{self._enum_name}#{self._ordinal}"


class EnumDescriptor:
    """Compile-time/runtime metadata for one value enum declaration."""

    def __init__(self, name: str, constants: "list[str]"):
        if len(set(constants)) != len(constants):
            raise ValueSemanticsError(f"duplicate constants in enum {name}")
        self.name = name
        self.constants = list(constants)

    @property
    def size(self) -> int:
        return len(self.constants)

    def value_of(self, constant: str) -> EnumValue:
        try:
            ordinal = self.constants.index(constant)
        except ValueError:
            raise ValueSemanticsError(
                f"enum {self.name} has no constant {constant!r}"
            ) from None
        return EnumValue(self.name, ordinal, self.size)

    def value_at(self, ordinal: int) -> EnumValue:
        return EnumValue(self.name, ordinal, self.size)

    def name_of(self, value: EnumValue) -> str:
        if value.enum_name != self.name:
            raise ValueSemanticsError(
                f"{value!r} does not belong to enum {self.name}"
            )
        return self.constants[value.ordinal]

    def __repr__(self) -> str:
        return f"EnumDescriptor({self.name}, {self.constants})"
