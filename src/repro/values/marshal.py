"""The universal wire format for crossing the host/device boundary.

Section 4.3 of the paper: because the runtime supports disparate
accelerators, it adopts a universal "wire" format that relies only on
sending a byte stream. A Lime value is (1) serialized to a byte array,
(2) carried across the JNI boundary, and (3) converted into a densely
packed C-style value on the native side; the return path is the mirror
image.

This module implements step (1)/(3)'s data formats. During task
substitution the runtime looks up a *custom serializer based on the task
I/O data type* — :func:`serializer_for` is exactly that lookup.

Wire layout (little endian throughout):

========  =====================================================
tag byte  payload
========  =====================================================
0x01      int: 4-byte two's complement
0x02      long: 8-byte two's complement
0x03      float: IEEE-754 binary32
0x04      double: IEEE-754 binary64
0x05      boolean: 1 byte (0/1)
0x06      bit: 1 byte (0/1)
0x07      enum: u8 name length, utf-8 name, u8 size, u8 ordinal
0x08      array: element tag byte (+ enum header if element is enum),
          u32 element count, densely packed elements (bits are packed
          8 per byte, LSB first; other scalars use their scalar layout
          without per-element tags)
0x09      batch: element kind encoding (identical to the array tag's),
          u32 value count, densely packed values — the payload block is
          byte-identical to the array payload for the same values, so
          the native unpack path is shared (docs/PERFORMANCE.md)
========  =====================================================

The batch frame (0x09) is the **batched fast path**: N homogeneous
values cross the boundary under a single header, amortizing the
per-value tag byte and every fixed per-crossing cost. Use
:func:`serialize_batch` / :func:`deserialize_batch`; the scalar
functions remain the one-value-at-a-time slow path.
"""

from __future__ import annotations

import struct

from repro.errors import MarshalingError
from repro.values.base import (
    INT_MAX,
    INT_MIN,
    LONG_MAX,
    LONG_MIN,
    Kind,
    array_kind,
    enum_kind,
    kind_of,
)
from repro.values.arrays import ValueArray
from repro.values.bits import Bit, pack_bits, unpack_bits
from repro.values.bufpool import DEFAULT_POOL, BufferPool
from repro.values.enums import EnumValue

TAG_INT = 0x01
TAG_LONG = 0x02
TAG_FLOAT = 0x03
TAG_DOUBLE = 0x04
TAG_BOOLEAN = 0x05
TAG_BIT = 0x06
TAG_ENUM = 0x07
TAG_ARRAY = 0x08
TAG_BATCH = 0x09

_SCALAR_TAGS = {
    "int": TAG_INT,
    "long": TAG_LONG,
    "float": TAG_FLOAT,
    "double": TAG_DOUBLE,
    "boolean": TAG_BOOLEAN,
    "bit": TAG_BIT,
}
_TAG_NAMES = {v: k for k, v in _SCALAR_TAGS.items()}

_STRUCT_FMT = {
    "int": "<i",
    "long": "<q",
    "float": "<f",
    "double": "<d",
}


def _check_int_range(value: int, kind: Kind) -> int:
    lo, hi = (INT_MIN, INT_MAX) if kind.name == "int" else (LONG_MIN, LONG_MAX)
    if not lo <= value <= hi:
        raise MarshalingError(f"{value} out of range for {kind}")
    return value


class Serializer:
    """Serializer for one kind. Subclasses implement the scalar codecs."""

    def __init__(self, kind: Kind):
        self.kind = kind

    def serialize(self, value: object) -> bytes:
        """Encode ``value`` (of this serializer's kind) to wire bytes."""
        raise NotImplementedError

    def deserialize(self, data: bytes, offset: int = 0) -> "tuple[object, int]":
        """Decode one value; returns (value, next offset)."""
        raise NotImplementedError


class ScalarSerializer(Serializer):
    """int/long/float/double/boolean/bit with a tag byte prefix."""

    def serialize(self, value: object) -> bytes:
        tag = _SCALAR_TAGS[self.kind.name]
        return bytes([tag]) + _encode_scalar(self.kind, value)

    def deserialize(self, data: bytes, offset: int = 0):
        tag = data[offset]
        if tag != _SCALAR_TAGS[self.kind.name]:
            raise MarshalingError(
                f"expected {self.kind} tag, found 0x{tag:02x}"
            )
        return _decode_scalar(self.kind, data, offset + 1)


class EnumSerializer(Serializer):
    def serialize(self, value: object) -> bytes:
        if not isinstance(value, EnumValue) or value.enum_name != self.kind.enum_name:
            raise MarshalingError(f"expected {self.kind}, got {value!r}")
        name = value.enum_name.encode("utf-8")
        if len(name) > 255:
            raise MarshalingError("enum name too long for wire format")
        return bytes([TAG_ENUM, len(name)]) + name + bytes(
            [value.enum_size, value.ordinal]
        )

    def deserialize(self, data: bytes, offset: int = 0):
        if data[offset] != TAG_ENUM:
            raise MarshalingError("expected enum tag")
        return _decode_enum(data, offset + 1)


class ArraySerializer(Serializer):
    """Dense array codec — the payload format native code consumes.

    Marshaling on the native side "is similar but more specialized
    because the data is generally densely packed" (Section 4.3); the
    dense element block here is byte-identical to the native layout, so
    the native conversion step is a straight memcpy in concept.
    """

    def serialize(self, value: object) -> bytes:
        if not isinstance(value, ValueArray):
            raise MarshalingError(
                f"only value arrays cross the boundary, got {value!r}"
            )
        if value.element_kind != self.kind.element:
            raise MarshalingError(
                f"expected {self.kind}, got array of {value.element_kind}"
            )
        elem = self.kind.element
        assert elem is not None
        header = bytes([TAG_ARRAY]) + _encode_element_kind(elem)
        header += struct.pack("<I", len(value))
        return header + _encode_dense(elem, value)

    def deserialize(self, data: bytes, offset: int = 0):
        if data[offset] != TAG_ARRAY:
            raise MarshalingError("expected array tag")
        offset += 1
        elem, offset = _decode_element_kind(data, offset)
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        items, offset = _decode_dense(elem, data, offset, count)
        return ValueArray(elem, items), offset


def _encode_scalar(kind: Kind, value: object) -> bytes:
    if kind.name in ("int", "long"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise MarshalingError(f"expected {kind}, got {value!r}")
        return struct.pack(_STRUCT_FMT[kind.name], _check_int_range(value, kind))
    if kind.name in ("float", "double"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MarshalingError(f"expected {kind}, got {value!r}")
        return struct.pack(_STRUCT_FMT[kind.name], float(value))
    if kind.name == "boolean":
        if not isinstance(value, bool):
            raise MarshalingError(f"expected boolean, got {value!r}")
        return bytes([1 if value else 0])
    if kind.name == "bit":
        if not isinstance(value, Bit):
            raise MarshalingError(f"expected bit, got {value!r}")
        return bytes([int(value)])
    raise MarshalingError(f"not a scalar kind: {kind}")


def _decode_scalar(kind: Kind, data: bytes, offset: int):
    if kind.name in _STRUCT_FMT:
        fmt = _STRUCT_FMT[kind.name]
        (value,) = struct.unpack_from(fmt, data, offset)
        return value, offset + struct.calcsize(fmt)
    if kind.name == "boolean":
        return bool(data[offset]), offset + 1
    if kind.name == "bit":
        return Bit(data[offset]), offset + 1
    raise MarshalingError(f"not a scalar kind: {kind}")


def _decode_enum(data: bytes, offset: int):
    name_len = data[offset]
    offset += 1
    name = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    size = data[offset]
    ordinal = data[offset + 1]
    return EnumValue(name, ordinal, size), offset + 2


def _encode_element_kind(elem: Kind) -> bytes:
    if elem.is_scalar:
        return bytes([_SCALAR_TAGS[elem.name]])
    if elem.is_enum:
        name = (elem.enum_name or "").encode("utf-8")
        return bytes([TAG_ENUM, len(name)]) + name + bytes([elem.enum_size])
    if elem.is_array:
        assert elem.element is not None
        return bytes([TAG_ARRAY]) + _encode_element_kind(elem.element)
    raise MarshalingError(f"cannot encode element kind {elem}")


def _decode_element_kind(data: bytes, offset: int) -> "tuple[Kind, int]":
    tag = data[offset]
    offset += 1
    if tag in _TAG_NAMES:
        return Kind(_TAG_NAMES[tag]), offset
    if tag == TAG_ENUM:
        name_len = data[offset]
        offset += 1
        name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        size = data[offset]
        return enum_kind(name, size), offset + 1
    if tag == TAG_ARRAY:
        inner, offset = _decode_element_kind(data, offset)
        return array_kind(inner), offset
    raise MarshalingError(f"unknown element kind tag 0x{tag:02x}")


def _encode_dense(elem: Kind, items) -> bytes:
    if elem.name == "bit":
        return pack_bits(items)
    if elem.name in _STRUCT_FMT:
        fmt = "<" + _STRUCT_FMT[elem.name][1] * len(items)
        if elem.name in ("int", "long"):
            for item in items:
                _check_int_range(item, elem)
            return struct.pack(fmt, *items)
        return struct.pack(fmt, *(float(x) for x in items))
    if elem.name == "boolean":
        return bytes(1 if x else 0 for x in items)
    if elem.is_enum:
        return bytes(x.ordinal for x in items)
    if elem.is_array:
        # Nested arrays: u32 length + dense payload per element.
        out = bytearray()
        inner = elem.element
        assert inner is not None
        for sub in items:
            out += struct.pack("<I", len(sub))
            out += _encode_dense(inner, sub)
        return bytes(out)
    raise MarshalingError(f"cannot densely encode {elem}")


def _decode_dense(elem: Kind, data: bytes, offset: int, count: int):
    if elem.name == "bit":
        nbytes = (count + 7) // 8
        items = unpack_bits(data[offset : offset + nbytes], count)
        return items, offset + nbytes
    if elem.name in _STRUCT_FMT:
        fmt = "<" + _STRUCT_FMT[elem.name][1] * count
        size = struct.calcsize(fmt)
        items = struct.unpack_from(fmt, data, offset)
        return list(items), offset + size
    if elem.name == "boolean":
        items = [bool(b) for b in data[offset : offset + count]]
        return items, offset + count
    if elem.is_enum:
        items = [
            EnumValue(elem.enum_name, data[offset + i], elem.enum_size)
            for i in range(count)
        ]
        return items, offset + count
    if elem.is_array:
        inner = elem.element
        assert inner is not None
        items = []
        for _ in range(count):
            (sub_count,) = struct.unpack_from("<I", data, offset)
            offset += 4
            sub_items, offset = _decode_dense(inner, data, offset, sub_count)
            items.append(ValueArray(inner, sub_items))
        return items, offset
    raise MarshalingError(f"cannot densely decode {elem}")


def serializer_for(kind: Kind) -> Serializer:
    """Find the custom serializer for a task I/O data type (Section 4.3)."""
    if kind.is_scalar:
        return ScalarSerializer(kind)
    if kind.is_enum:
        return EnumSerializer(kind)
    if kind.is_array:
        return ArraySerializer(kind)
    raise MarshalingError(f"no serializer for kind {kind}")


def serialize(value: object) -> bytes:
    """Serialize any Lime value using its inferred kind."""
    return serializer_for(kind_of(value)).serialize(value)


def deserialize(data: bytes) -> object:
    """Deserialize exactly one value; trailing bytes are an error."""
    if not data:
        raise MarshalingError("empty wire payload")
    tag = data[0]
    if tag in _TAG_NAMES:
        kind = Kind(_TAG_NAMES[tag])
    elif tag == TAG_ENUM:
        value, end = _decode_enum(data, 1)
        if end != len(data):
            raise MarshalingError("trailing bytes after enum payload")
        return value
    elif tag == TAG_ARRAY:
        elem, _ = _decode_element_kind(data, 1)
        kind = array_kind(elem)
    elif tag == TAG_BATCH:
        raise MarshalingError(
            "payload is a batch frame; use deserialize_batch"
        )
    else:
        raise MarshalingError(f"unknown wire tag 0x{tag:02x}")
    value, end = serializer_for(kind).deserialize(data, 0)
    if end != len(data):
        raise MarshalingError("trailing bytes after payload")
    return value


# ---------------------------------------------------------------------------
# Batched fast path (0x09 frames)
# ---------------------------------------------------------------------------


def _check_batch_element(kind: Kind, value: object) -> None:
    """Reject a value that does not belong in a ``kind`` batch, with
    the same strictness as the scalar serializers (bool is never an
    int/float; enum names and sizes must match exactly)."""
    if kind.name in ("int", "long"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise MarshalingError(f"expected {kind} in batch, got {value!r}")
        return
    if kind.name in ("float", "double"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MarshalingError(f"expected {kind} in batch, got {value!r}")
        return
    if kind.name == "boolean":
        if not isinstance(value, bool):
            raise MarshalingError(
                f"expected boolean in batch, got {value!r}"
            )
        return
    if kind.name == "bit":
        if not isinstance(value, Bit):
            raise MarshalingError(f"expected bit in batch, got {value!r}")
        return
    if kind.is_enum:
        if (
            not isinstance(value, EnumValue)
            or value.enum_name != kind.enum_name
            or value.enum_size != kind.enum_size
        ):
            raise MarshalingError(f"expected {kind} in batch, got {value!r}")
        return
    if kind.is_array:
        if (
            not isinstance(value, ValueArray)
            or value.element_kind != kind.element
        ):
            raise MarshalingError(f"expected {kind} in batch, got {value!r}")
        return
    raise MarshalingError(f"cannot batch values of kind {kind}")


def infer_batch_kind(values) -> Kind:
    """The homogeneous kind of a non-empty batch.

    ``int`` widens to ``long`` when any element needs 64 bits (the
    scalar path makes the same per-value decision in :func:`kind_of`);
    any other kind mismatch is an error — a batch shares one header,
    so it must share one layout.
    """
    values = list(values)
    if not values:
        raise MarshalingError(
            "cannot infer the kind of an empty batch; pass kind="
        )
    kind = kind_of(values[0])
    if kind.name in ("int", "long"):
        for v in values:
            k = kind_of(v)
            if k.name not in ("int", "long"):
                raise MarshalingError(
                    f"heterogeneous batch: {kind} then {k}"
                )
            if k.name == "long":
                kind = k
        return kind
    for v in values[1:]:
        k = kind_of(v)
        if k != kind:
            raise MarshalingError(f"heterogeneous batch: {kind} then {k}")
    return kind


def _dense_size_hint(kind: Kind, count: int) -> int:
    """Approximate payload bytes, for sizing the staging buffer."""
    if kind.name == "bit":
        return (count + 7) // 8
    if kind.name in ("int", "float"):
        return 4 * count
    if kind.name in ("long", "double"):
        return 8 * count
    # booleans, enums: 1 byte each; nested arrays: unknowable cheaply.
    return count


def serialize_batch(
    values,
    kind: "Kind | None" = None,
    pool: "BufferPool | None" = None,
) -> bytes:
    """Pack N homogeneous values into one contiguous 0x09 frame.

    One header covers the whole batch, so per-value tag bytes and
    per-crossing fixed costs are amortized over N. The frame's payload
    block is byte-identical to the dense payload of
    ``serialize(ValueArray(kind, values))`` — only the leading tag
    differs — which is what the conformance suite locks down.

    The staging buffer comes from ``pool`` (default: the process-wide
    :data:`~repro.values.bufpool.DEFAULT_POOL`) and is returned to it
    after the immutable snapshot is taken.
    """
    values = list(values)
    if kind is None:
        kind = infer_batch_kind(values)
    if not (kind.is_scalar or kind.is_enum or kind.is_array):
        raise MarshalingError(f"cannot batch values of kind {kind}")
    for value in values:
        _check_batch_element(kind, value)
    pool = pool if pool is not None else DEFAULT_POOL
    hint = 8 + _dense_size_hint(kind, len(values))
    buffer = pool.acquire(hint)
    try:
        buffer.append(TAG_BATCH)
        buffer += _encode_element_kind(kind)
        buffer += struct.pack("<I", len(values))
        buffer += _encode_dense(kind, values)
        return bytes(buffer)
    finally:
        pool.release(buffer, hint)


def _decode_batch_header(data: bytes) -> "tuple[Kind, int, int]":
    """Parse a 0x09 frame header; returns (kind, count, payload offset)."""
    if not data:
        raise MarshalingError("empty wire payload")
    if data[0] != TAG_BATCH:
        raise MarshalingError(
            f"expected batch tag 0x{TAG_BATCH:02x}, found 0x{data[0]:02x}"
        )
    kind, offset = _decode_element_kind(data, 1)
    if len(data) < offset + 4:
        raise MarshalingError("truncated batch header")
    (count,) = struct.unpack_from("<I", data, offset)
    return kind, count, offset + 4


def batch_count(data: bytes) -> int:
    """Number of values in a batch frame, without decoding the payload
    (the marshaling boundary uses this to keep fault-injection call
    indices element-accurate before deserializing)."""
    return _decode_batch_header(data)[1]


def batch_kind(data: bytes) -> Kind:
    """The element kind of a batch frame, header-only."""
    return _decode_batch_header(data)[0]


def deserialize_batch(data: bytes) -> list:
    """Unpack a 0x09 frame back into its list of values; trailing
    bytes are an error, exactly as for :func:`deserialize`."""
    kind, count, offset = _decode_batch_header(data)
    items, end = _decode_dense(kind, data, offset, count)
    if end != len(data):
        raise MarshalingError("trailing bytes after batch payload")
    return list(items)


# ---------------------------------------------------------------------------
# Checkpoint/journal frames (docs/RECOVERY.md)
# ---------------------------------------------------------------------------
#
# The durable job journal and the stage-checkpoint files both persist
# append-only streams of *framed* records over the wire format above:
#
#     [u32 payload length][32-byte sha256(payload)][payload bytes]
#
# fsync-free but torn-write-tolerant: a crash mid-append leaves a short
# or corrupt tail frame, which the reader detects (length overrun or
# digest mismatch) and truncates — dropping exactly the torn record and
# nothing before it.

_FRAME_HEADER = struct.Struct("<I")
_FRAME_DIGEST_BYTES = 32
_FRAME_OVERHEAD = _FRAME_HEADER.size + _FRAME_DIGEST_BYTES


def frame_record(payload: bytes) -> bytes:
    """Wrap one record payload in a length+sha256 frame."""
    import hashlib

    return (
        _FRAME_HEADER.pack(len(payload))
        + hashlib.sha256(payload).digest()
        + payload
    )


def unframe_records(data: bytes) -> "tuple[list, int]":
    """Parse a stream of frames; returns ``(payloads, torn_bytes)``.

    Parsing stops at the first frame that is short, overruns the
    buffer, or fails its digest; everything from that point on counts
    as torn bytes (a crash mid-append, or tail corruption)."""
    import hashlib

    payloads: list = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME_OVERHEAD:
            break
        (length,) = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_OVERHEAD
        if start + length > total:
            break
        digest = data[offset + _FRAME_HEADER.size : start]
        payload = data[start : start + length]
        if hashlib.sha256(payload).digest() != digest:
            break
        payloads.append(payload)
        offset = start + length
    return payloads, total - offset


def pack_values(values) -> bytes:
    """Serialize a heterogeneous value list into one length-prefixed
    stream of scalar wire frames — the checkpoint form of a memoized
    stage/map result (elements need not share a kind, so the 0x09
    batch frame does not apply)."""
    parts = [_FRAME_HEADER.pack(len(values))]
    for value in values:
        frame = serialize(value)
        parts.append(_FRAME_HEADER.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def unpack_values(data: bytes) -> list:
    """Invert :func:`pack_values`."""
    if len(data) < _FRAME_HEADER.size:
        raise MarshalingError("truncated pack_values stream")
    (count,) = _FRAME_HEADER.unpack_from(data, 0)
    offset = _FRAME_HEADER.size
    values: list = []
    for _ in range(count):
        if len(data) < offset + _FRAME_HEADER.size:
            raise MarshalingError("truncated pack_values element header")
        (length,) = _FRAME_HEADER.unpack_from(data, offset)
        offset += _FRAME_HEADER.size
        if len(data) < offset + length:
            raise MarshalingError("truncated pack_values element")
        values.append(deserialize(data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise MarshalingError("trailing bytes after pack_values stream")
    return values
