"""Runtime instances of user-declared Lime classes.

Instances of *value classes* are recursively immutable once their
constructor completes; instances of ordinary classes stay mutable.
Struct values never cross the device boundary in this reproduction
(backends exclude tasks with struct-typed I/O), so they have no wire
format — they live purely on the CPU/bytecode side.
"""

from __future__ import annotations

from repro.errors import ValueSemanticsError


class StructValue:
    """One object instance: a class name plus named fields.

    The bytecode interpreter constructs the instance unfrozen, runs the
    constructor body, then calls :meth:`freeze` for value classes.
    """

    __slots__ = ("class_name", "_fields", "_frozen", "_is_value_class")

    def __init__(self, class_name: str, field_names, is_value_class: bool):
        self.class_name = class_name
        self._fields = {name: None for name in field_names}
        self._frozen = False
        self._is_value_class = is_value_class

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def is_value_class(self) -> bool:
        return self._is_value_class

    def get(self, name: str) -> object:
        if name not in self._fields:
            raise ValueSemanticsError(
                f"{self.class_name} has no field {name!r}"
            )
        return self._fields[name]

    def set(self, name: str, value: object) -> None:
        if self._frozen:
            raise ValueSemanticsError(
                f"cannot mutate frozen value instance of {self.class_name}"
            )
        if name not in self._fields:
            raise ValueSemanticsError(
                f"{self.class_name} has no field {name!r}"
            )
        self._fields[name] = value

    def freeze(self) -> "StructValue":
        """Make the instance immutable (end of a value-class constructor)."""
        self._frozen = True
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructValue):
            return NotImplemented
        return (
            self.class_name == other.class_name
            and self._fields == other._fields
        )

    def __hash__(self) -> int:
        if not self._frozen:
            raise ValueSemanticsError("mutable struct is not hashable")
        return hash((self.class_name, tuple(sorted(self._fields.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"{self.class_name}({inner})"
