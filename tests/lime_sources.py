"""Shared Lime source snippets used across the test suite.

``FIGURE1`` is the paper's Figure 1 Bitflip class. The ``bit`` value
enum from Figure 1 lines 1–6 is built into the compiler (bit data is
first class in Lime), so the source here contains the Bitflip class
only; a user-declared enum with the same shape is tested separately.
"""

FIGURE1 = """
public class Bitflip {
    local static bit flip(bit b) {
        return ~b;
    }
    local static bit[[]] mapFlip(bit[[]] input) {
        var flipped = Bitflip @ flip(input);
        return flipped;
    }
    static bit[[]] taskFlip(bit[[]] input) {
        bit[] result = new bit[input.length];
        var flipit = input.source(1)
            => ([ task flip ])
            => result.<bit>sink();
        flipit.finish();
        return new bit[[]](result);
    }
}
"""

USER_ENUM = """
public value enum color {
    red, green, blue;
    public color ~ this {
        return this == red ? blue : red;
    }
}
"""

SAXPY = """
public class Saxpy {
    local static float axpy(float x, float y) {
        return 2.5f * x + y;
    }
    local static float[[]] run(float[[]] xs, float[[]] ys) {
        return Saxpy @ axpy(xs, ys);
    }
    local static float add(float a, float b) {
        return a + b;
    }
    local static float total(float[[]] xs) {
        return Saxpy ! add(xs);
    }
}
"""
