"""Tests for runtime adaptation (Section 4.2 future work, implemented)."""

import pytest

from repro.apps import SUITE, compile_app
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_INT, ValueArray


def adaptive_runtime(app):
    compiled = compile_app(app)
    policy = SubstitutionPolicy(adaptive=True)
    return Runtime(compiled, RuntimeConfig(policy=policy))


def crc8_ref(b):
    crc = b & 255
    for _ in range(8):
        fb = crc & 1
        crc >>= 1
        if fb:
            crc ^= 0x8C
    return crc


class TestAdaptation:
    def test_results_correct_regardless_of_choice(self):
        runtime = adaptive_runtime("crc8")
        xs = ValueArray(KIND_INT, [i % 256 for i in range(512)])
        result = runtime.call("Crc8.checksums", [xs])
        assert list(result) == [crc8_ref(x) for x in xs]

    def test_adaptation_record_written(self):
        runtime = adaptive_runtime("crc8")
        xs = ValueArray(KIND_INT, [i % 256 for i in range(512)])
        runtime.call("Crc8.checksums", [xs])
        assert len(runtime.adaptation_log) == 1
        record = runtime.adaptation_log[0]
        assert record.cpu_s_per_item > 0
        assert record.device_s_per_item > 0
        assert record.chosen in ("bytecode", record.device)

    def test_compute_heavy_stream_migrates_to_device(self):
        # CRC's unrolled bit loop is compute-heavy per item: per-item
        # device cost (amortized transfers) beats the interpreter.
        runtime = adaptive_runtime("crc8")
        xs = ValueArray(KIND_INT, [i % 256 for i in range(4096)])
        runtime.call("Crc8.checksums", [xs])
        record = runtime.adaptation_log[0]
        assert record.chosen == record.device

    def test_choice_matches_measurements(self):
        runtime = adaptive_runtime("gray_pipeline")
        xs = ValueArray(KIND_INT, [i for i in range(2048)])
        result = runtime.call("GrayCoder.pipeline", [xs])
        assert list(result) == [((x ^ (x >> 1)) * 3 + 1) for x in xs]
        record = runtime.adaptation_log[0]
        expected = (
            "bytecode"
            if record.cpu_s_per_item <= record.device_s_per_item
            else record.device
        )
        assert record.chosen == expected

    def test_sequential_scheduler_adapts_too(self):
        compiled = compile_app("crc8")
        policy = SubstitutionPolicy(adaptive=True)
        runtime = Runtime(
            compiled,
            RuntimeConfig(policy=policy, scheduler="sequential"),
        )
        xs = ValueArray(KIND_INT, [i % 256 for i in range(300)])
        result = runtime.call("Crc8.checksums", [xs])
        assert list(result) == [crc8_ref(x) for x in xs]
        assert runtime.adaptation_log

    def test_short_stream_never_reaches_decision(self):
        # Fewer items than one probe: only the CPU probe runs and no
        # decision is recorded — the stream is simply done.
        runtime = adaptive_runtime("crc8")
        xs = ValueArray(KIND_INT, [1, 2, 3])
        result = runtime.call("Crc8.checksums", [xs])
        assert list(result) == [crc8_ref(x) for x in xs]
        assert runtime.adaptation_log == []

    def test_stateful_span_falls_back_to_plain_substitution(self):
        # Stateful tasks are never adaptable (no device artifact exists
        # anyway); the run must still work.
        compiled = compile_app("running_sum")
        policy = SubstitutionPolicy(adaptive=True)
        runtime = Runtime(compiled, RuntimeConfig(policy=policy))
        xs = ValueArray(KIND_INT, [1, 2, 3])
        assert list(runtime.call("RunningSum.compute", [xs])) == [1, 3, 6]
        assert runtime.adaptation_log == []
