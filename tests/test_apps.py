"""Application-suite tests: every Lime benchmark compiles, runs, and
matches a Python reference (and the accelerated path matches bytecode)."""

import math

import pytest

from repro.apps import SUITE, compile_app
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy


def run_app(name, accelerators=True, args_override=None):
    compiled = compile_app(name)
    policy = SubstitutionPolicy(use_accelerators=accelerators)
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))
    entry, args = (
        args_override if args_override else SUITE[name].default_args()
    )
    return runtime.run(entry, args)


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_compiles(self, name):
        compiled = compile_app(name)
        assert compiled.bytecode_program.functions

    def test_every_map_app_gets_gpu_kernel(self):
        for name, spec in SUITE.items():
            if spec.flavor != "map":
                continue
            compiled = compile_app(name)
            gpu = compiled.store.for_device("gpu")
            assert gpu, f"{name} produced no GPU artifacts"

    def test_stream_apps_get_fpga_modules(self):
        for name in ("bitflip", "crc8", "parity", "gray_pipeline"):
            compiled = compile_app(name)
            fpga = compiled.store.for_device("fpga")
            assert fpga, f"{name} produced no FPGA artifacts"


class TestCorrectness:
    def test_saxpy_reference(self):
        from repro.apps.workloads import saxpy_args

        entry, args = saxpy_args(128)
        outcome = run_app("saxpy", args_override=(entry, args))
        a, xs, ys = args
        for got, x, y in zip(outcome.value, xs, ys):
            assert got == pytest.approx(a * x + y, rel=1e-5)

    def test_vector_sum_reference(self):
        from repro.apps.workloads import vector_sum_args

        entry, args = vector_sum_args(100)
        outcome = run_app("vector_sum", args_override=(entry, args))
        assert outcome.value == pytest.approx(sum(args[0]), rel=1e-4)

    def test_black_scholes_sane(self):
        outcome = run_app("black_scholes")
        prices = list(outcome.value)
        assert all(p >= -1e-3 for p in prices)
        assert any(p > 1.0 for p in prices)

    def test_black_scholes_reference_point(self):
        # Classic check: S=100, K=100, T=1, r=0.02, v=0.3 -> ~12.82.
        from repro.values import KIND_FLOAT, ValueArray

        entry = "BlackScholes.price"
        args = [
            ValueArray(KIND_FLOAT, [100.0]),
            ValueArray(KIND_FLOAT, [100.0]),
            ValueArray(KIND_FLOAT, [1.0]),
            0.02,
            0.30,
        ]
        outcome = run_app("black_scholes", args_override=(entry, args))
        assert outcome.value[0] == pytest.approx(12.822, abs=0.05)

    def test_mandelbrot_reference(self):
        from repro.apps.workloads import mandelbrot_args

        entry, args = mandelbrot_args(16, 8, 24)
        outcome = run_app("mandelbrot", args_override=(entry, args))
        counts = list(outcome.value)
        assert len(counts) == 128
        assert min(counts) >= 0 and max(counts) <= 24
        # The view window contains both interior and escaping points.
        assert max(counts) == 24
        assert min(counts) < 24

    def test_matmul_reference(self):
        from repro.apps.workloads import matmul_args

        entry, args = matmul_args(6)
        outcome = run_app("matmul", args_override=(entry, args))
        _, a, b, n = args
        for idx, got in enumerate(outcome.value):
            row, col = divmod(idx, n)
            want = sum(a[row * n + k] * b[k * n + col] for k in range(n))
            assert got == pytest.approx(want, rel=1e-4)

    def test_convolution_reference(self):
        from repro.apps.workloads import convolution_args

        entry, args = convolution_args(64, 5)
        outcome = run_app("convolution", args_override=(entry, args))
        _, signal, taps = args
        for i, got in enumerate(outcome.value):
            want = 0.0
            for k in range(len(taps)):
                j = i + k - len(taps) // 2
                if 0 <= j < len(signal):
                    want += signal[j] * taps[k]
            assert got == pytest.approx(want, rel=1e-3, abs=1e-5)

    def test_kmeans_reference(self):
        from repro.apps.workloads import kmeans_args

        entry, args = kmeans_args(64, 4)
        outcome = run_app("kmeans", args_override=(entry, args))
        _, px, py, cx, cy = args
        for i, got in enumerate(outcome.value):
            dists = [
                (px[i] - cx[c]) ** 2 + (py[i] - cy[c]) ** 2
                for c in range(len(cx))
            ]
            assert got == dists.index(min(dists))

    def test_nbody_symmetric_pair(self):
        from repro.values import KIND_FLOAT, KIND_INT, ValueArray

        entry = "NBody.potentials"
        args = [
            ValueArray(KIND_INT, [0, 1]),
            ValueArray(KIND_FLOAT, [0.0, 1.0]),
            ValueArray(KIND_FLOAT, [0.0, 0.0]),
            ValueArray(KIND_FLOAT, [0.0, 0.0]),
            ValueArray(KIND_FLOAT, [1.0, 1.0]),
        ]
        outcome = run_app("nbody", args_override=(entry, args))
        assert outcome.value[0] == pytest.approx(outcome.value[1])
        assert outcome.value[0] == pytest.approx(1.0, abs=1e-3)

    def test_crc8_reference(self):
        from repro.values import KIND_INT, ValueArray

        def crc8_ref(b):
            crc = b & 255
            for _ in range(8):
                fb = crc & 1
                crc >>= 1
                if fb:
                    crc ^= 0x8C
            return crc

        data = [0, 1, 0x55, 0xAA, 0xFF, 42]
        entry = "Crc8.checksums"
        outcome = run_app(
            "crc8", args_override=(entry, [ValueArray(KIND_INT, data)])
        )
        assert list(outcome.value) == [crc8_ref(b) for b in data]

    def test_gray_pipeline_reference(self):
        from repro.values import KIND_INT, ValueArray

        data = [0, 1, 2, 3, 255, 1024]
        entry = "GrayCoder.pipeline"
        outcome = run_app(
            "gray_pipeline",
            args_override=(entry, [ValueArray(KIND_INT, data)]),
        )
        assert list(outcome.value) == [
            ((x ^ (x >> 1)) * 3 + 1) for x in data
        ]

    def test_parity_reference(self):
        from repro.values import KIND_INT, Bit, ValueArray

        data = [0, 1, 3, 7, 0x7FFFFFFF, 0x12345678]
        entry = "Parity.compute"
        outcome = run_app(
            "parity", args_override=(entry, [ValueArray(KIND_INT, data)])
        )
        assert list(outcome.value) == [
            Bit(bin(x).count("1") & 1) for x in data
        ]

    def test_dct_dc_coefficient(self):
        # A constant image has all energy in each block's DC term.
        from repro.values import KIND_FLOAT, KIND_INT, ValueArray

        width, height = 8, 8
        n = width * height
        entry = "Dct.transform"
        args = [
            ValueArray(KIND_INT, list(range(n))),
            ValueArray(KIND_FLOAT, [100.0] * n),
            width,
        ]
        outcome = run_app("dct8x8", args_override=(entry, args))
        coeffs = list(outcome.value)
        assert coeffs[0] == pytest.approx(800.0, rel=1e-3)  # DC = 8*mean
        assert all(abs(c) < 1e-2 for c in coeffs[1:])


class TestAcceleratedMatchesBytecode:
    @pytest.mark.parametrize(
        "name",
        [
            "saxpy",
            "black_scholes",
            "matmul",
            "kmeans",
            "crc8",
            "gray_pipeline",
            "parity",
            "hybrid",
        ],
    )
    def test_equivalence(self, name):
        entry, args = SUITE[name].default_args()
        accelerated = run_app(name, True, (entry, args))
        plain = run_app(name, False, (entry, args))
        if isinstance(accelerated.value, float):
            assert accelerated.value == pytest.approx(plain.value)
        else:
            assert accelerated.value == plain.value

    def test_hybrid_uses_both_devices(self):
        # Manually direct the stream filter to the FPGA (Section 4.2:
        # the substitution choice "can be manually directed"); the map
        # stays on the GPU -> three-way CPU+GPU+FPGA co-execution.
        compiled = compile_app("hybrid")
        pack_id = compiled.task_graphs[0].stages[1].task_id
        policy = SubstitutionPolicy(directives={pack_id: "fpga"})
        runtime = Runtime(compiled, RuntimeConfig(policy=policy))
        entry, args = SUITE["hybrid"].default_args()
        outcome = runtime.run(entry, args)
        devices = {o.device for o in outcome.ledger.offloads}
        assert devices == {"gpu", "fpga"}
