"""Unit tests for the content-addressed artifact cache
(:mod:`repro.backends.artifacts`, docs/CACHING.md).

Covers the cache in isolation — options validation, key derivation
(determinism and sensitivity), store/load round trips with integrity
verification, LRU eviction with pinning, corruption handling, and the
maintenance surface (stats/verify/purge). The end-to-end warm-start
behaviour through :class:`repro.compiler.CompilerSession` lives in
``test_session.py``; bit-identical cold/warm execution lives in
``test_cache_differential.py``.
"""

import json
import os

import pytest

from repro.backends.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    CacheOptions,
    cache_key,
    canonical_fingerprint,
    ir_fingerprint,
    modeled_compile_s,
    modeled_load_s,
    options_fingerprint,
)
from repro.compiler import CompileOptions, compile_program
from repro.errors import ConfigurationError
from repro.obs import Tracer

from repro.apps import SUITE

BITFLIP = SUITE["bitflip"].source
SAXPY = SUITE["saxpy"].source


def _compiled(source=BITFLIP, **overrides):
    return compile_program(
        source, options=CompileOptions(**overrides)
    )


def _cache(tmp_path, **overrides):
    overrides.setdefault("mode", "readwrite")
    return ArtifactCache(
        CacheOptions(cache_dir=str(tmp_path / "cache"), **overrides)
    )


class TestCacheOptions:
    def test_default_is_off(self):
        options = CacheOptions()
        assert not options.enabled
        assert not options.readable
        assert not options.writable

    def test_readwrite_properties(self):
        options = CacheOptions(cache_dir="/tmp/x", mode="readwrite")
        assert options.enabled and options.readable and options.writable

    def test_read_mode_is_not_writable(self):
        options = CacheOptions(cache_dir="/tmp/x", mode="read")
        assert options.enabled and options.readable
        assert not options.writable

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="cache mode"):
            CacheOptions(cache_dir="/tmp/x", mode="write-only")

    def test_enabled_mode_requires_dir(self):
        with pytest.raises(ConfigurationError, match="requires cache_dir"):
            CacheOptions(mode="readwrite")

    def test_nonpositive_max_bytes_rejected(self):
        with pytest.raises(ConfigurationError, match="max_bytes"):
            CacheOptions(cache_dir="/tmp/x", mode="read", max_bytes=0)

    def test_empty_device_family_rejected(self):
        with pytest.raises(ConfigurationError, match="device_family"):
            CacheOptions(device_family="")

    def test_replace_revalidates(self):
        options = CacheOptions(cache_dir="/tmp/x", mode="read")
        with pytest.raises(ConfigurationError):
            options.replace(max_bytes=-1)


class TestKeyDerivation:
    def test_same_module_same_key(self):
        a = _compiled()
        b = _compiled()
        options = CompileOptions()
        for backend in ("bytecode", "opencl", "verilog"):
            assert cache_key(a.module, backend, options) == cache_key(
                b.module, backend, options
            )

    def test_whitespace_and_comments_do_not_change_key(self):
        # Source positions are skipped during canonicalization, so a
        # reformatted program must still warm-start.
        reformatted = BITFLIP.replace("\n    ", "\n        ").replace(
            "public class Bitflip {",
            "public class Bitflip {\n        // a comment",
        )
        a, b = _compiled(), _compiled(reformatted)
        options = CompileOptions()
        assert cache_key(a.module, "opencl", options) == cache_key(
            b.module, "opencl", options
        )

    def test_semantic_edit_changes_key(self):
        edited = BITFLIP.replace("return ~b;", "return b;")
        a, b = _compiled(), _compiled(edited)
        options = CompileOptions()
        assert cache_key(a.module, "opencl", options) != cache_key(
            b.module, "opencl", options
        )

    def test_different_programs_different_keys(self):
        a, b = _compiled(BITFLIP), _compiled(SAXPY)
        options = CompileOptions()
        assert cache_key(a.module, "opencl", options) != cache_key(
            b.module, "opencl", options
        )

    def test_backend_id_partitions_keys(self):
        module = _compiled().module
        options = CompileOptions()
        keys = {
            cache_key(module, backend, options)
            for backend in ("bytecode", "opencl", "verilog")
        }
        assert len(keys) == 3

    def test_device_family_partitions_keys(self):
        module = _compiled().module
        options = CompileOptions()
        assert cache_key(
            module, "verilog", options, device_family="default"
        ) != cache_key(module, "verilog", options, device_family="v2")

    def test_fpga_knob_invalidates_only_verilog(self):
        # Per-backend option slices: toggling an FPGA knob must miss on
        # verilog but keep bytecode/opencl entries warm.
        module = _compiled().module
        plain = CompileOptions()
        pipelined = CompileOptions(fpga_pipelined=True)
        assert cache_key(module, "verilog", plain) != cache_key(
            module, "verilog", pipelined
        )
        for unaffected in ("bytecode", "opencl"):
            assert cache_key(module, unaffected, plain) == cache_key(
                module, unaffected, pipelined
            )

    def test_run_optimizations_invalidates_every_backend(self):
        module = _compiled().module
        on, off = CompileOptions(), CompileOptions(run_optimizations=False)
        for backend in ("bytecode", "opencl", "verilog"):
            assert cache_key(module, backend, on) != cache_key(
                module, backend, off
            )

    def test_options_fingerprint_is_backend_sliced(self):
        options = CompileOptions(fpga_pipelined=True)
        assert "fpga_pipelined" in options_fingerprint(options, "verilog")
        assert "fpga_pipelined" not in options_fingerprint(
            options, "opencl"
        )

    def test_canonical_fingerprint_handles_sets(self):
        # Set iteration order is hash-seed dependent; the canonical
        # form must not be (the cross-process determinism fence).
        assert canonical_fingerprint(
            {"deps": {"b", "a", "c"}}
        ) == canonical_fingerprint({"deps": {"c", "a", "b"}})

    def test_ir_fingerprint_is_a_hex_digest(self):
        fingerprint = ir_fingerprint(_compiled().module)
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestStoreLoad:
    def test_round_trip(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        artifacts = list(result.store.for_device("gpu"))
        assert artifacts
        key = cache_key(result.module, "opencl", CompileOptions())
        entry = cache.store("opencl", key, artifacts, [])
        assert entry.payload_bytes > 0
        assert entry.modeled_compile_s == modeled_compile_s(
            "opencl", artifacts
        )

        loaded = cache.load("opencl", key)
        assert loaded is not None
        assert [a.artifact_id for a in loaded.artifacts] == [
            a.artifact_id for a in artifacts
        ]
        assert [a.text for a in loaded.artifacts] == [
            a.text for a in artifacts
        ]
        assert loaded.payload_bytes == entry.payload_bytes
        assert loaded.modeled_load_s == modeled_load_s(
            entry.payload_bytes
        )
        # A cached artifact stays executable: compare payload behaviour
        # via repr of the re-pickled simulator objects' manifests.
        assert [a.manifest.device for a in loaded.artifacts] == [
            "gpu" for _ in artifacts
        ]

    def test_exclusions_round_trip(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled(SAXPY, enable_fpga=True)
        key = cache_key(result.module, "verilog", CompileOptions())
        artifacts = list(result.store.for_device("fpga"))
        exclusions = [
            e for e in result.store.exclusions if e.device == "fpga"
        ]
        cache.store("verilog", key, artifacts, exclusions)
        loaded = cache.load("verilog", key)
        assert [
            (e.device, e.task_id, e.reason) for e in loaded.exclusions
        ] == [(e.device, e.task_id, e.reason) for e in exclusions]

    def test_unknown_key_is_a_miss(self, tmp_path):
        cache = _cache(tmp_path)
        tracer = Tracer()
        assert cache.load("opencl", "0" * 64, tracer=tracer) is None
        assert tracer.counters.get("cache.miss") == 1
        assert tracer.counters.get("cache.miss[opencl]") == 1

    def test_counters_and_span(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        key = cache_key(result.module, "bytecode", CompileOptions())
        tracer = Tracer()
        cache.store(
            "bytecode", key, [result.bytecode_artifact], [], tracer=tracer
        )
        assert tracer.counters.get("cache.store") == 1
        assert tracer.counters.get("cache.bytes.written") > 0
        cache.load("bytecode", key, tracer=tracer)
        assert tracer.counters.get("cache.hit") == 1
        assert tracer.counters.get("cache.hit[bytecode]") == 1
        assert tracer.counters.get("cache.bytes.read") > 0
        spans = tracer.find("cache.load")
        assert len(spans) == 1
        assert spans[0].attributes["state"] == "hit"
        assert spans[0].attributes["load_us"] > 0

    def test_read_mode_never_writes(self, tmp_path):
        rw = _cache(tmp_path)
        ro = ArtifactCache(rw.options.replace(mode="read"))
        result = _compiled()
        key = cache_key(result.module, "bytecode", CompileOptions())
        with pytest.raises(ConfigurationError, match="read-only"):
            ro.store("bytecode", key, [result.bytecode_artifact], [])


class TestCorruption:
    def _stored(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        key = cache_key(result.module, "opencl", CompileOptions())
        artifacts = list(result.store.for_device("gpu"))
        cache.store("opencl", key, artifacts, [])
        return cache, key, artifacts

    def _entry_dir(self, cache, key):
        return os.path.join(cache.root, "objects", key)

    def test_truncated_payload_is_a_miss(self, tmp_path):
        cache, key, _ = self._stored(tmp_path)
        entry_dir = self._entry_dir(cache, key)
        payload = os.path.join(entry_dir, "payload.0.pkl")
        with open(payload, "r+b") as f:
            f.truncate(max(os.path.getsize(payload) // 2, 1))
        tracer = Tracer()
        assert cache.load("opencl", key, tracer=tracer) is None
        assert tracer.counters.get("cache.corrupt") == 1
        assert tracer.counters.get("cache.miss") == 1
        # The corrupt entry is dropped so the next store repopulates.
        assert not os.path.isdir(entry_dir)
        assert key not in cache.keys()

    def test_flipped_manifest_hash_is_a_miss(self, tmp_path):
        cache, key, _ = self._stored(tmp_path)
        manifest_path = os.path.join(
            self._entry_dir(cache, key), "manifest.json"
        )
        with open(manifest_path) as f:
            manifest = json.load(f)
        digest = manifest["artifacts"][0]["payload_sha256"]
        flipped = ("0" if digest[0] != "0" else "1") + digest[1:]
        manifest["artifacts"][0]["payload_sha256"] = flipped
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)
        tracer = Tracer()
        assert cache.load("opencl", key, tracer=tracer) is None
        assert tracer.counters.get("cache.corrupt") == 1

    def test_bad_schema_is_a_miss(self, tmp_path):
        cache, key, _ = self._stored(tmp_path)
        manifest_path = os.path.join(
            self._entry_dir(cache, key), "manifest.json"
        )
        with open(manifest_path) as f:
            manifest = json.load(f)
        manifest["schema"] = "repro.artifact/999"
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)
        assert cache.load("opencl", key) is None

    def test_unreadable_manifest_is_a_miss(self, tmp_path):
        cache, key, _ = self._stored(tmp_path)
        manifest_path = os.path.join(
            self._entry_dir(cache, key), "manifest.json"
        )
        with open(manifest_path, "w") as f:
            f.write("{not json")
        tracer = Tracer()
        assert cache.load("opencl", key, tracer=tracer) is None
        assert tracer.counters.get("cache.corrupt") == 1

    def test_corrupt_entry_repopulates(self, tmp_path):
        cache, key, artifacts = self._stored(tmp_path)
        payload = os.path.join(
            self._entry_dir(cache, key), "payload.0.pkl"
        )
        with open(payload, "wb") as f:
            f.write(b"garbage")
        assert cache.load("opencl", key) is None
        cache.store("opencl", key, artifacts, [])
        assert cache.load("opencl", key) is not None


class TestEviction:
    def _store_program(self, cache, source, backend="opencl"):
        result = compile_program(source, options=CompileOptions())
        key = cache_key(result.module, backend, CompileOptions())
        device = {"opencl": "gpu", "verilog": "fpga"}.get(backend)
        artifacts = (
            list(result.store.for_device(device))
            if device
            else [result.bytecode_artifact]
        )
        cache.store(backend, key, artifacts, [])
        return key

    def test_lru_evicts_oldest_unpinned(self, tmp_path):
        cache = _cache(tmp_path)
        first = self._store_program(cache, BITFLIP)
        second = self._store_program(cache, SAXPY)
        # Shrink the budget below the two entries' combined footprint;
        # touching `second` makes `first` the LRU victim.
        cache.load("opencl", second)
        total = cache.total_bytes()
        small = ArtifactCache(
            cache.options.replace(max_bytes=total - 1)
        )
        third = self._store_program(small, BITFLIP.replace("~b", "b"))
        remaining = set(small.keys())
        assert third in remaining
        assert first not in remaining, "LRU entry should have been evicted"

    def test_pinned_entries_survive_eviction(self, tmp_path):
        cache = _cache(tmp_path)
        first = self._store_program(cache, BITFLIP)
        cache.pin(first)
        small = ArtifactCache(cache.options.replace(max_bytes=1))
        second = self._store_program(small, SAXPY)
        remaining = set(small.keys())
        assert first in remaining, "pinned entries must never be evicted"
        # The just-stored entry is protected this round too (keep=key);
        # only older unpinned entries are LRU victims.
        assert second in remaining
        cache.unpin(first)
        assert first not in cache.pinned()

    def test_evict_counter(self, tmp_path):
        cache = _cache(tmp_path)
        first = self._store_program(cache, BITFLIP)
        tracer = Tracer()
        assert cache.evict(first, tracer=tracer)
        assert tracer.counters.get("cache.evict") == 1
        assert not cache.evict(first, tracer=tracer)


class TestMaintenance:
    def test_stats(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        for backend, artifacts in (
            ("bytecode", [result.bytecode_artifact]),
            ("opencl", list(result.store.for_device("gpu"))),
        ):
            key = cache_key(result.module, backend, CompileOptions())
            cache.store(backend, key, artifacts, [])
        stats = cache.stats()
        assert stats["schema"] == ARTIFACT_SCHEMA
        assert stats["entry_count"] == 2
        assert stats["total_bytes"] == cache.total_bytes()
        assert set(stats["backends"]) == {"bytecode", "opencl"}
        assert all(e["bytes"] > 0 for e in stats["entries"])

    def test_verify_clean_and_corrupt(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        key = cache_key(result.module, "bytecode", CompileOptions())
        cache.store("bytecode", key, [result.bytecode_artifact], [])
        assert cache.verify() == []
        payload = os.path.join(
            cache.root, "objects", key, "payload.0.pkl"
        )
        with open(payload, "wb") as f:
            f.write(b"zzz")
        problems = cache.verify()
        assert len(problems) == 1 and problems[0][0] == key
        # Non-destructive by default; delete_corrupt drops the entry.
        assert key in cache.keys()
        cache.verify(delete_corrupt=True)
        assert key not in cache.keys()

    def test_purge(self, tmp_path):
        cache = _cache(tmp_path)
        result = _compiled()
        key = cache_key(result.module, "bytecode", CompileOptions())
        cache.store("bytecode", key, [result.bytecode_artifact], [])
        cache.pin(key)
        assert cache.purge() == 1
        assert cache.keys() == []
        assert cache.pinned() == []
        assert cache.total_bytes() == 0
