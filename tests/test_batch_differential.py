"""Differential conformance: batching must be invisible.

``RuntimeConfig.batch_size`` only changes *how many values share one
wire buffer and one modeled boundary crossing* — never what any app
computes. The differential suite pins that down three ways:

* every app in the suite produces bit-identical results under
  ``batch_size=1`` (the true per-element path) and ``batch_size=64``
  (the amortized fast path), on both schedulers;
* under the ``flaky_gpu`` fault plan the batched runs still degrade to
  exactly the cpu-only result — a fault that fires mid-batch demotes
  and replays correctly;
* the fault log itself (which spec fired, at which logical call index)
  is identical across batch sizes, because call indices count logical
  per-element transfers, not physical crossings.
"""

import os

import pytest

from repro.apps import SUITE, compile_app, workloads
from repro.obs import Tracer
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
    load_fault_plan,
)
from tests.test_suite_equivalence import SMALL_ARGS

FLAKY_GPU = os.path.join(
    os.path.dirname(__file__), "..", "examples", "fault_plans",
    "flaky_gpu.json",
)

#: Apps whose reduced workloads exercise at least one device boundary —
#: the interesting population for a marshaling differential.
ACCELERATED = [
    "bitflip",
    "saxpy",
    "vector_sum",
    "mandelbrot",
    "gray_pipeline",
    "hybrid",
]


def _run(name, batch_size, scheduler, **overrides):
    entry, args = SMALL_ARGS[name]()
    compiled = compile_app(name)
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            batch_size=batch_size, scheduler=scheduler, **overrides
        ),
    )
    result = runtime.run(entry, args)
    return runtime, result


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
@pytest.mark.parametrize("name", sorted(SUITE))
def test_batch_size_is_invisible(name, scheduler):
    _, per_element = _run(name, 1, scheduler)
    _, batched = _run(name, 64, scheduler)
    assert repr(per_element.value) == repr(batched.value), name
    assert per_element.output == batched.output, name


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
@pytest.mark.parametrize("batch_size", [1, 64])
@pytest.mark.parametrize("name", ACCELERATED)
def test_flaky_gpu_differential(name, batch_size, scheduler):
    # Reference: accelerators off, no faults.
    entry, args = SMALL_ARGS[name]()
    compiled = compile_app(name)
    reference = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    runtime, faulty = _run(
        name,
        batch_size,
        scheduler,
        fault_plan=load_fault_plan(FLAKY_GPU),
        retry=RetryPolicy(max_attempts=2),
        tracer=Tracer(),
    )
    # A fault that fires mid-batch must demote and replay the whole
    # span; the degraded result is still exactly the cpu-only one.
    assert repr(faulty.value) == repr(reference.value), name
    assert faulty.output == reference.output, name


def _marshal_plan():
    # Marshal-site faults only, at fixed logical call indices. The
    # ``device`` site deliberately counts physical kernel launches (a
    # retry replays the whole batch), so only the marshal sites promise
    # batch-size-invariant call indexing — that promise is what a plan
    # written against the per-element path depends on.
    return FaultPlan(
        [
            FaultSpec(
                site="marshal.from_device",
                error="marshaling",
                target="gpu",
                on_calls=(2,),
            ),
            FaultSpec(
                site="marshal.to_device",
                error="marshaling",
                target="*",
                on_calls=(3,),
                times=1,
            ),
        ],
        seed=7,
    )


#: Apps substituted as filter pipelines — the path that drains the
#: FIFO in RuntimeConfig.batch_size chunks. (saxpy/vector_sum/
#: mandelbrot offload whole arrays through the map/reduce path, whose
#: single-array crossings are batch-size-independent by construction.)
FILTER_ACCELERATED = ["bitflip", "gray_pipeline", "hybrid"]


@pytest.mark.parametrize("name", FILTER_ACCELERATED)
def test_marshal_fault_log_identical_across_batch_sizes(name):
    # Each spec's fault history — concrete target plus 1-based
    # *logical* call index, in firing order — must be identical whether
    # values cross one at a time or 64 at a time. (Only the inter-site
    # interleaving may differ: a batched crossing completes all of its
    # to-device logical calls before the first from-device one, where
    # the per-element path alternates.) This is the regression fence
    # for examples/fault_plans/: marshal faults keep firing at the same
    # logical points under batching.
    logs = {}
    for batch_size in (1, 64):
        runtime, _ = _run(
            name,
            batch_size,
            "sequential",
            fault_plan=_marshal_plan(),
            retry=RetryPolicy(max_attempts=2),
        )
        per_spec = {}
        for f in runtime.faults.log:
            per_spec.setdefault(f.spec_index, []).append(
                (f.site, f.target, f.call_index)
            )
        logs[batch_size] = per_spec
    assert logs[1] == logs[64], name
    assert logs[1], f"plan never fired for {name}; test is vacuous"
