"""Tests for the bytecode compiler and interpreter (the CPU artifact)."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY
from repro.backends.bytecode import Interpreter, compile_module
from repro.errors import DeviceError
from repro.ir import build_ir
from repro.lime import analyze
from repro.values import KIND_BIT, KIND_FLOAT, KIND_INT, Bit, ValueArray
from repro.values import parse_bit_literal


def interp_for(source):
    module = build_ir(analyze(source))
    return Interpreter(compile_module(module))


def run(source, method, args):
    return interp_for(source).call(method, args)


class TestArithmetic:
    def test_basic_math(self):
        source = "class T { static int m(int a, int b) { return a * b + 1; } }"
        assert run(source, "T.m", [6, 7]) == 43

    def test_int_division_truncates_toward_zero(self):
        source = "class T { static int m(int a, int b) { return a / b; } }"
        assert run(source, "T.m", [-7, 2]) == -3
        assert run(source, "T.m", [7, -2]) == -3

    def test_int_overflow_wraps(self):
        source = "class T { static int m(int a) { return a + 1; } }"
        assert run(source, "T.m", [2**31 - 1]) == -(2**31)

    def test_division_by_zero_raises(self):
        source = "class T { static int m(int a) { return a / 0; } }"
        # Constant folding refuses to fold 1/0; execution raises.
        with pytest.raises(DeviceError):
            run(source, "T.m", [1])

    def test_float_truncation_on_cast(self):
        source = "class T { static int m(double d) { return (int) d; } }"
        assert run(source, "T.m", [2.9]) == 2
        assert run(source, "T.m", [-2.9]) == -2

    def test_float32_rounding(self):
        source = "class T { static float m(float a, float b) { return a + b; } }"
        result = run(source, "T.m", [0.1, 0.2])
        import struct

        expected = struct.unpack("<f", struct.pack("<f", 0.1 + 0.2))[0]
        assert result == pytest.approx(expected, abs=1e-9)

    def test_math_intrinsics(self):
        source = "class T { static double m(double x) { return Math.sqrt(x); } }"
        assert run(source, "T.m", [16.0]) == 4.0

    def test_shift_ops(self):
        source = "class T { static int m(int x) { return (x << 3) >> 1; } }"
        assert run(source, "T.m", [5]) == 20


class TestControlFlow:
    def test_loop_sum(self):
        source = (
            "class T { static int m(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) { s += i; } return s; } }"
        )
        assert run(source, "T.m", [10]) == 45

    def test_while_loop(self):
        source = (
            "class T { static int m(int n) { int s = 0; int i = 0; "
            "while (i < n) { s += 2; i++; } return s; } }"
        )
        assert run(source, "T.m", [5]) == 10

    def test_break(self):
        source = (
            "class T { static int m() { int s = 0; "
            "for (int i = 0; i < 100; i++) { if (i == 5) { break; } s += 1; } "
            "return s; } }"
        )
        assert run(source, "T.m", []) == 5

    def test_continue_in_canonical_for(self):
        source = (
            "class T { static int m() { int s = 0; "
            "for (int i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } s += i; } "
            "return s; } }"
        )
        assert run(source, "T.m", []) == 25  # 1+3+5+7+9

    def test_short_circuit_and(self):
        source = """
        class T {
            static int calls;
            static boolean bump() { calls += 1; return true; }
            static int m(boolean gate) {
                if (gate && bump()) { }
                return calls;
            }
        }
        """
        assert run(source, "T.m", [False]) == 0
        assert run(source, "T.m", [True]) == 1

    def test_short_circuit_or(self):
        source = """
        class T {
            static int calls;
            static boolean bump() { calls += 1; return false; }
            static int m(boolean gate) {
                if (gate || bump()) { }
                return calls;
            }
        }
        """
        assert run(source, "T.m", [True]) == 0
        assert run(source, "T.m", [False]) == 1

    def test_recursion(self):
        source = (
            "class T { static int fib(int n) "
            "{ return n < 2 ? n : fib(n-1) + fib(n-2); } }"
        )
        assert run(source, "T.fib", [12]) == 144

    def test_stack_overflow_detected(self):
        source = "class T { static int f(int n) { return f(n + 1); } }"
        with pytest.raises(DeviceError):
            run(source, "T.f", [0])


class TestArraysAndBits:
    def test_array_roundtrip(self):
        source = (
            "class T { static int m(int n) { int[] a = new int[n]; "
            "for (int i = 0; i < n; i++) { a[i] = i * i; } "
            "int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } return s; } }"
        )
        assert run(source, "T.m", [5]) == 30

    def test_bounds_check(self):
        source = "class T { static int m(int[] a, int i) { return a[i]; } }"
        from repro.values import MutableArray

        interp = interp_for(source)
        arr = MutableArray(KIND_INT, [1, 2, 3])
        with pytest.raises(DeviceError):
            interp.call("T.m", [arr, 3])
        with pytest.raises(DeviceError):
            interp.call("T.m", [arr, -1])

    def test_bit_flip(self):
        assert run(FIGURE1, "Bitflip.flip", [Bit.ZERO]) is Bit.ONE
        assert run(FIGURE1, "Bitflip.flip", [Bit.ONE]) is Bit.ZERO

    def test_mapflip_paper_example(self):
        # mapFlip(100b) == 011b elementwise flip (Section 2.2 flips every
        # bit of 100b).
        arr = ValueArray(KIND_BIT, parse_bit_literal("100"))
        result = run(FIGURE1, "Bitflip.mapFlip", [arr])
        assert result == ValueArray(KIND_BIT, parse_bit_literal("011"))

    def test_bit_literal_in_code(self):
        source = "class T { static bit[[]] m() { return 100b; } }"
        result = run(source, "T.m", [])
        assert repr(result) == "100b"

    def test_freeze_conversion(self):
        source = (
            "class T { static bit[[]] m() { bit[] a = new bit[2]; "
            "a[1] = bit.one; return new bit[[]](a); } }"
        )
        result = run(source, "T.m", [])
        assert repr(result) == "10b"


class TestMapReduce:
    def test_saxpy_map(self):
        xs = ValueArray(KIND_FLOAT, [1.0, 2.0, 3.0])
        ys = ValueArray(KIND_FLOAT, [10.0, 20.0, 30.0])
        result = run(SAXPY, "Saxpy.run", [xs, ys])
        assert list(result) == pytest.approx([12.5, 25.0, 37.5])

    def test_reduce_total(self):
        xs = ValueArray(KIND_FLOAT, [1.0, 2.0, 3.0, 4.0])
        assert run(SAXPY, "Saxpy.total", [xs]) == pytest.approx(10.0)

    def test_map_length_mismatch(self):
        xs = ValueArray(KIND_FLOAT, [1.0])
        ys = ValueArray(KIND_FLOAT, [1.0, 2.0])
        with pytest.raises(DeviceError):
            run(SAXPY, "Saxpy.run", [xs, ys])


class TestObjects:
    SOURCE = """
    value class Vec {
        float x; float y;
        Vec(float x0, float y0) { this.x = x0; this.y = y0; }
        float dot(Vec other) { return x * other.x + y * other.y; }
    }
    class T {
        static float m(float a, float b) {
            Vec v = new Vec(a, b);
            Vec w = new Vec(b, a);
            return v.dot(w);
        }
    }
    """

    def test_value_class_roundtrip(self):
        assert run(self.SOURCE, "T.m", [2.0, 3.0]) == pytest.approx(12.0)

    def test_value_instances_frozen(self):
        source = self.SOURCE
        interp = interp_for(source)
        # Build a Vec directly through the constructor path.
        result = interp.call("T.m", [1.0, 1.0])
        assert result == pytest.approx(2.0)


class TestStaticsAndIO:
    def test_static_initializer_runs(self):
        source = """
        class T {
            static int base = 40;
            static int m() { return base + 2; }
        }
        """
        assert run(source, "T.m", []) == 42

    def test_static_default_zero(self):
        source = "class T { static int counter; static int m() { return counter; } }"
        assert run(source, "T.m", []) == 0

    def test_println_capture(self):
        source = 'class T { static void m() { println("hi " + 3); } }'
        interp = interp_for(source)
        interp.call("T.m", [])
        assert interp.output == "hi 3\n"

    def test_boolean_prints_java_style(self):
        source = "class T { static void m() { println(true); } }"
        interp = interp_for(source)
        interp.call("T.m", [])
        assert interp.output == "true\n"


class TestCycleAccounting:
    def test_cycles_accumulate(self):
        source = (
            "class T { static int m(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) { s += i; } return s; } }"
        )
        interp = interp_for(source)
        interp.call("T.m", [10])
        small = interp.cycles
        interp2 = interp_for(source)
        interp2.call("T.m", [1000])
        assert interp2.cycles > small * 20

    def test_cycles_scale_linearly(self):
        source = (
            "class T { static int m(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) { s += i; } return s; } }"
        )
        a = interp_for(source)
        a.call("T.m", [1000])
        b = interp_for(source)
        b.call("T.m", [2000])
        ratio = b.cycles / a.cycles
        assert 1.8 < ratio < 2.2
