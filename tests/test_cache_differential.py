"""Differential conformance: warm starts must be invisible.

The artifact cache only changes *where backend artifacts come from*
(disk instead of codegen) — never what any app computes or how long
the modeled execution takes. For every app in the suite, on both
schedulers, a warm-started compile must produce bit-identical results
to the cold compile it was harvested from: same printed output, same
return value, same simulated seconds.

The corruption half proves the failure path is equally invisible: a
truncated payload or a flipped manifest hash downgrades to an honest
miss (counted as ``cache.corrupt``), recompiles, repopulates the
entry, and still produces the cold result.
"""

import json
import os

import pytest

from repro.apps import SUITE
from repro.backends.artifacts import ArtifactCache, CacheOptions, cache_key
from repro.compiler import CompileOptions, CompilerSession
from repro.obs import Tracer
from repro.runtime import Runtime, RuntimeConfig
from tests.test_suite_equivalence import SMALL_ARGS


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One harvested cache shared by the whole differential sweep —
    populated cold, then every warm test reads from it."""
    root = str(tmp_path_factory.mktemp("diff-cache"))
    options = CompileOptions(
        cache=CacheOptions(cache_dir=root, mode="readwrite")
    )
    session = CompilerSession(options)
    for name in sorted(SUITE):
        session.compile(SUITE[name].source, filename=f"<{name}.lime>")
    return root


def _options(cache_dir, mode="readwrite"):
    return CompileOptions(
        cache=CacheOptions(cache_dir=cache_dir, mode=mode)
    )


def _execute(compiled, name, scheduler):
    entry, args = SMALL_ARGS[name]()
    runtime = Runtime(compiled, RuntimeConfig(scheduler=scheduler))
    outcome = runtime.run(entry, args)
    return (
        outcome.output,
        repr(outcome.value),
        outcome.ledger.summary()["total_s"],
    )


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
@pytest.mark.parametrize("name", sorted(SUITE))
def test_warm_start_is_invisible(name, scheduler, cache_dir):
    source = SUITE[name].source
    cold = CompilerSession().compile(source, filename=f"<{name}.lime>")
    warm = CompilerSession(_options(cache_dir, mode="read")).compile(
        source, filename=f"<{name}.lime>"
    )
    assert warm.warm, f"{name} did not warm-start from the harvest"
    assert warm.store.provenance == "warm"
    # Same artifacts, bit for bit (ids, devices, generated source).
    assert [
        (a.artifact_id, a.manifest.device, a.text)
        for a in warm.store.all()
    ] == [
        (a.artifact_id, a.manifest.device, a.text)
        for a in cold.store.all()
    ], name
    # Same exclusions (the warm store must reconstruct them too).
    assert [
        (e.device, e.task_id, e.reason) for e in warm.store.exclusions
    ] == [
        (e.device, e.task_id, e.reason) for e in cold.store.exclusions
    ], name
    # Same execution: output, value, and simulated seconds.
    assert _execute(warm, name, scheduler) == _execute(
        cold, name, scheduler
    ), name


CORRUPTIBLE = ["bitflip", "gray_pipeline"]


def _harvested(tmp_path, name):
    options = _options(str(tmp_path / "cache"))
    CompilerSession(options).compile(SUITE[name].source)
    cache = ArtifactCache(options.cache)
    result = CompilerSession().compile(SUITE[name].source)
    key = cache_key(result.module, "opencl", options)
    return options, cache, key


@pytest.mark.parametrize("name", CORRUPTIBLE)
def test_truncated_payload_recompiles(tmp_path, name):
    options, cache, key = _harvested(tmp_path, name)
    payload = os.path.join(cache.root, "objects", key, "payload.0.pkl")
    with open(payload, "r+b") as f:
        f.truncate(max(os.path.getsize(payload) // 2, 1))

    tracer = Tracer()
    recovered = CompilerSession(options.replace(tracer=tracer)).compile(
        SUITE[name].source
    )
    assert recovered.cache_info["opencl"]["state"] == "miss"
    assert tracer.counters.get("cache.corrupt") == 1
    assert recovered.store.provenance == "mixed"
    # The recompile repopulated the entry; the next compile is warm.
    rewarmed = CompilerSession(options).compile(SUITE[name].source)
    assert rewarmed.warm
    # And the degraded run still computes the cold result.
    cold = CompilerSession().compile(SUITE[name].source)
    assert _execute(recovered, name, "sequential") == _execute(
        cold, name, "sequential"
    )


@pytest.mark.parametrize("name", CORRUPTIBLE)
def test_flipped_manifest_hash_recompiles(tmp_path, name):
    options, cache, key = _harvested(tmp_path, name)
    manifest_path = os.path.join(
        cache.root, "objects", key, "manifest.json"
    )
    with open(manifest_path) as f:
        manifest = json.load(f)
    digest = manifest["artifacts"][0]["payload_sha256"]
    manifest["artifacts"][0]["payload_sha256"] = (
        ("0" if digest[0] != "0" else "1") + digest[1:]
    )
    with open(manifest_path, "w") as f:
        json.dump(manifest, f)

    tracer = Tracer()
    recovered = CompilerSession(options.replace(tracer=tracer)).compile(
        SUITE[name].source
    )
    assert recovered.cache_info["opencl"]["state"] == "miss"
    assert tracer.counters.get("cache.corrupt") == 1
    cold = CompilerSession().compile(SUITE[name].source)
    assert _execute(recovered, name, "sequential") == _execute(
        cold, name, "sequential"
    )
