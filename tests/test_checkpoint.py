"""Tests for stage-boundary checkpoints (repro.runtime.checkpoint).

Covers delta-frame capture/persist (seq-chained, O(interval) frames),
bit-identical resume on both schedulers, replay refusals
(specialization, adaptive substitution, scheduler mismatch, item-count
divergence), torn-chain tolerance, and the kill switch."""

import json

import pytest

from repro.apps import SUITE, compile_app, workloads
from repro.errors import (
    CheckpointReplayError,
    ConfigurationError,
)
from repro.runtime import (
    CheckpointRecorder,
    Runtime,
    RuntimeConfig,
    SpecializationPolicy,
    SubstitutionPolicy,
    load_frames,
    load_last_frame,
)
from repro.runtime.checkpoint import CHECKPOINT_MAGIC, DEFAULT_INTERVAL
from repro.values import frame_record, unframe_records

APP = "gray_pipeline"


def _run(path, *, scheduler="sequential", interval=2, resume=False,
         batch_size=8, app=APP):
    entry, args = workloads.small_args(app)
    compiled = compile_app(app)
    if resume:
        recorder = CheckpointRecorder.resume(
            str(path), interval=interval, job_id="job-t"
        )
        assert recorder is not None
    else:
        recorder = CheckpointRecorder(
            str(path), interval=interval, job_id="job-t"
        )
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            scheduler=scheduler,
            batch_size=batch_size,
            device_batch_size=batch_size,
        ),
        checkpointer=recorder,
    )
    outcome = runtime.run(entry, args)
    return outcome, recorder


class TestCaptureAndPersist:
    def test_sequential_persists_delta_frames(self, tmp_path):
        path = tmp_path / "c.ckpt"
        outcome, recorder = _run(path, interval=2)
        assert recorder.frames_persisted >= 2
        frames = load_frames(str(path))
        assert [frame["seq"] for frame in frames] == list(
            range(len(frames))
        )
        # Delta frames: each carries only its slice, and the chain
        # carries every persisted entry exactly once.
        sizes = [len(frame["entries"]) for frame in frames]
        assert all(size <= 2 for size in sizes)
        assert sum(sizes) >= 2 * (len(frames) - 1)

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointRecorder(str(tmp_path / "c.ckpt"), interval=0)

    def test_default_interval(self, tmp_path):
        recorder = CheckpointRecorder(str(tmp_path / "c.ckpt"))
        assert recorder.interval == DEFAULT_INTERVAL

    def test_fresh_recorder_truncates(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1)
        assert len(load_frames(str(path))) > 0
        CheckpointRecorder(str(path), job_id="job-t")
        assert load_frames(str(path)) == []

    def test_kill_stops_persisting(self, tmp_path):
        path = tmp_path / "c.ckpt"
        entry, args = workloads.small_args(APP)
        compiled = compile_app(APP)
        recorder = CheckpointRecorder(str(path), interval=1)
        recorder.kill()
        runtime = Runtime(
            compiled,
            RuntimeConfig(
                scheduler="sequential",
                batch_size=8,
                device_batch_size=8,
            ),
            checkpointer=recorder,
        )
        runtime.run(entry, args)
        assert recorder.frames_persisted == 0
        assert load_frames(str(path)) == []

    def test_refuses_specialization(self, tmp_path):
        compiled = compile_app(APP)
        recorder = CheckpointRecorder(str(tmp_path / "c.ckpt"))
        with pytest.raises(ConfigurationError):
            Runtime(
                compiled,
                RuntimeConfig(
                    scheduler="sequential",
                    specialize=SpecializationPolicy(enabled=True),
                ),
                checkpointer=recorder,
            )

    def test_refuses_adaptive(self, tmp_path):
        compiled = compile_app(APP)
        recorder = CheckpointRecorder(str(tmp_path / "c.ckpt"))
        with pytest.raises(ConfigurationError):
            Runtime(
                compiled,
                RuntimeConfig(
                    scheduler="sequential",
                    policy=SubstitutionPolicy(adaptive=True),
                ),
                checkpointer=recorder,
            )


class TestResume:
    @pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
    def test_resume_is_bit_identical(self, tmp_path, scheduler):
        path = tmp_path / "c.ckpt"
        first, recorder = _run(path, scheduler=scheduler, interval=1)
        if scheduler == "threaded":
            # Threaded runs only persist at graph boundaries; force
            # the tail out so the replay covers the whole run.
            recorder.flush()
        assert recorder.frames_persisted >= 1
        second, replayer = _run(
            path, scheduler=scheduler, interval=1, resume=True
        )
        assert replayer.resume_hits > 0
        assert second.value == first.value
        assert second.output == first.output
        assert second.ledger.total_s == first.ledger.total_s

    def test_resume_missing_file_is_none(self, tmp_path):
        assert CheckpointRecorder.resume(str(tmp_path / "no")) is None

    def test_resume_magic_only_is_none(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC)
        assert CheckpointRecorder.resume(str(path)) is None

    def test_resume_torn_tail_uses_valid_prefix(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1)
        whole = len(load_frames(str(path)))
        assert whole >= 2
        path.write_bytes(path.read_bytes()[:-5])
        assert len(load_frames(str(path))) == whole - 1
        recorder = CheckpointRecorder.resume(str(path), interval=1)
        assert recorder is not None

    def test_chain_stops_at_out_of_order_seq(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1)
        frames = load_frames(str(path))
        assert len(frames) >= 2
        # Re-write the chain with a gap: seq 0 then seq 2.
        frames[1]["seq"] = 2
        data = CHECKPOINT_MAGIC
        for frame in frames:
            payload = json.dumps(
                frame, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
            data += frame_record(payload)
        path.write_bytes(data)
        assert len(load_frames(str(path))) == 1

    def test_scheduler_mismatch_raises(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, scheduler="sequential", interval=1)
        with pytest.raises(CheckpointReplayError):
            _run(path, scheduler="threaded", interval=1, resume=True)

    def test_item_count_divergence_raises(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1, batch_size=8)
        with pytest.raises(CheckpointReplayError):
            # Different batch size => the first memoized decision
            # point sees a different item count.
            _run(path, interval=1, batch_size=4, resume=True)

    def test_load_last_frame_is_chain_tail(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1)
        frames = load_frames(str(path))
        last = load_last_frame(str(path))
        assert last == frames[-1]


class TestFrameContent:
    def test_frames_are_schema_stamped(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _run(path, interval=1)
        data = path.read_bytes()
        assert data.startswith(CHECKPOINT_MAGIC)
        payloads, torn = unframe_records(data[len(CHECKPOINT_MAGIC):])
        assert torn == 0
        for payload in payloads:
            frame = json.loads(payload.decode("utf-8"))
            assert frame["schema"] == "repro.checkpoint/1"
            assert frame["scheduler"] == "sequential"
            assert frame["job_id"] == "job-t"
            assert "injector" in frame
            assert "supervisor" in frame
            assert "health" in frame

    def test_modeled_persist_cost_accumulates(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _, recorder = _run(path, interval=1)
        assert recorder.frames_persisted > 0
        assert recorder.modeled_persist_s > 0.0
        assert recorder.bytes_persisted > len(CHECKPOINT_MAGIC)
