"""Tests for the command-line interface and the IDE-style views."""

import pytest

from tests.lime_sources import FIGURE1
from repro.cli import _parse_value, main
from repro.compiler import compile_program
from repro.ide import annotate_source, exclusion_notes
from repro.values import KIND_INT, ValueArray


@pytest.fixture()
def bitflip_file(tmp_path):
    path = tmp_path / "bitflip.lime"
    path.write_text(FIGURE1)
    return str(path)


class TestParseValue:
    def test_scalars(self):
        assert _parse_value("42") == 42
        assert _parse_value("2.5") == 2.5
        assert _parse_value("true") is True
        assert _parse_value("false") is False

    def test_bit_literal(self):
        value = _parse_value("101b")
        assert repr(value) == "101b"

    def test_arrays(self):
        assert _parse_value("ints:1,2,3") == ValueArray(KIND_INT, [1, 2, 3])
        floats = _parse_value("floats:0.5,1.5")
        assert list(floats) == [0.5, 1.5]
        bits = _parse_value("bits:1,0")
        assert repr(bits) == "01b"

    def test_garbage_rejected(self):
        with pytest.raises(SystemExit):
            _parse_value("wat?")


class TestCommands:
    def test_compile(self, bitflip_file, capsys):
        assert main(["compile", bitflip_file]) == 0
        out = capsys.readouterr().out
        assert "task graphs:" in out
        assert "source(1) => [flip] => sink" in out

    def test_run(self, bitflip_file, capsys):
        code = main(
            ["run", bitflip_file, "Bitflip.taskFlip", "110010111b"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "001101000b" in out

    def test_run_with_time(self, bitflip_file, capsys):
        main(
            [
                "run",
                bitflip_file,
                "Bitflip.taskFlip",
                "101b",
                "--time",
            ]
        )
        out = capsys.readouterr().out
        assert "simulated time:" in out

    def test_run_cpu_only(self, bitflip_file, capsys):
        assert (
            main(
                [
                    "run",
                    bitflip_file,
                    "Bitflip.taskFlip",
                    "101b",
                    "--cpu-only",
                ]
            )
            == 0
        )
        assert "010b" in capsys.readouterr().out

    def test_markers(self, bitflip_file, capsys):
        assert main(["markers", bitflip_file]) == 0
        out = capsys.readouterr().out
        assert "●" in out
        assert "legend" in out

    def test_graphs(self, bitflip_file, capsys):
        assert main(["graphs", bitflip_file]) == 0
        out = capsys.readouterr().out
        assert "Bitflip.taskFlip#g0" in out
        assert "gpu" in out and "fpga" in out

    def test_disas(self, bitflip_file, capsys):
        assert main(["disas", bitflip_file]) == 0
        out = capsys.readouterr().out
        assert ".method Bitflip.flip" in out
        assert "MKTASK" in out

    def test_emit_opencl(self, bitflip_file, capsys):
        assert main(["emit-opencl", bitflip_file]) == 0
        assert "__kernel" in capsys.readouterr().out

    def test_emit_verilog(self, bitflip_file, capsys):
        assert main(["emit-verilog", bitflip_file]) == 0
        assert "module mod_Bitflip_flip" in capsys.readouterr().out

    def test_emit_verilog_none(self, tmp_path, capsys):
        path = tmp_path / "nofpga.lime"
        path.write_text(
            "class T { local static float f(float x) { return x; } "
            "static float[[]] m(float[[]] xs) { return T @ f(xs); } }"
        )
        assert main(["emit-verilog", str(path)]) == 1

    def test_no_gpu_flag(self, bitflip_file, capsys):
        assert main(["compile", bitflip_file, "--no-gpu"]) == 0
        out = capsys.readouterr().out
        assert "gpu:" not in out

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.lime"
        path.write_text("class T { static int f() { return true; } }")
        assert main(["compile", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.lime"]) == 1

    def test_build_repository(self, bitflip_file, tmp_path, capsys):
        out_dir = str(tmp_path / "repo")
        assert main(["build", bitflip_file, "-o", out_dir]) == 0
        out = capsys.readouterr().out
        assert "artifacts" in out
        import os

        assert os.path.exists(os.path.join(out_dir, "index.json"))

    def test_emit_testbench(self, bitflip_file, capsys):
        assert (
            main(
                ["emit-testbench", bitflip_file, "--inputs", "bits:1,0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "module tb_mod_Bitflip_flip" in out


class TestIDEViews:
    def test_marker_on_relocation_line(self):
        compiled = compile_program(FIGURE1)
        body_lines = annotate_source(compiled).splitlines()[:-1]  # drop legend
        marked = [line for line in body_lines if "●" in line]
        assert len(marked) == 1
        assert "task flip" in marked[0]
        assert "FG" in marked[0]  # both device artifacts exist

    def test_no_markers_without_artifacts(self):
        source = (
            "class T { local static float f(float x) { return x; } }"
        )
        compiled = compile_program(source)
        body_lines = annotate_source(compiled).splitlines()[:-1]
        assert not any("●" in line for line in body_lines)

    def test_exclusion_notes(self):
        source = """
        class T {
            local static float f(float x) { return x + 1.0f; }
            static void m(float[[]] xs, float[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        compiled = compile_program(source)
        notes = exclusion_notes(compiled)
        assert "[fpga]" in notes
        assert "synthesizable" in notes

    def test_exclusion_notes_empty(self):
        compiled = compile_program("class T { }")
        assert exclusion_notes(compiled) == "(no exclusions)"


class TestProfileAndFormat:
    def test_run_profile_flag(self, bitflip_file, capsys):
        assert (
            main(
                [
                    "run",
                    bitflip_file,
                    "Bitflip.taskFlip",
                    "101b",
                    "--cpu-only",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "method profile" in out
        assert "Bitflip.flip" in out  # ran on the CPU, so it appears

    def test_format_normalizes(self, tmp_path, capsys):
        messy = tmp_path / "messy.lime"
        messy.write_text(
            "class   T{static int m(int x){return x   + 1 ;}}"
        )
        assert main(["format", str(messy)]) == 0
        out = capsys.readouterr().out
        assert "class T {" in out
        assert "return x + 1;" in out

    def test_runtime_profile_api(self):
        from repro.apps import SUITE, compile_app
        from repro.runtime import (
            Runtime,
            RuntimeConfig,
            SubstitutionPolicy,
        )

        runtime = Runtime(
            compile_app("crc8"),
            RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
        )
        entry, args = SUITE["crc8"].default_args()
        runtime.run(entry, args)
        profile = runtime.profile(top=5)
        names = [name for name, _, _ in profile]
        assert "Crc8.step" in names
        step = dict(
            (name, (calls, cycles)) for name, calls, cycles in profile
        )["Crc8.step"]
        assert step[0] == 256  # one call per stream item
        # Sorted by inclusive cycles descending.
        cycle_counts = [cycles for _, _, cycles in profile]
        assert cycle_counts == sorted(cycle_counts, reverse=True)


class TestBatchSizeFlag:
    def test_run_accepts_batch_size(self, bitflip_file, capsys):
        # Same program, true per-element crossings: identical output.
        code = main(
            [
                "run",
                bitflip_file,
                "Bitflip.taskFlip",
                "110010111b",
                "--batch-size",
                "1",
            ]
        )
        assert code == 0
        assert "001101000b" in capsys.readouterr().out

    def test_batch_size_must_be_positive(self, bitflip_file, capsys):
        code = main(
            [
                "run",
                bitflip_file,
                "Bitflip.taskFlip",
                "101b",
                "--batch-size",
                "0",
            ]
        )
        assert code != 0
        assert "batch_size must be positive" in capsys.readouterr().err


class TestProfileCommand:
    def test_text_report(self, capsys):
        assert main(["profile", "mandelbrot"]) == 0
        out = capsys.readouterr().out
        assert "profile: mandelbrot" in out
        assert "critical path" in out
        assert "bottleneck:" in out

    def test_json_report(self, capsys):
        import json

        assert main(["profile", "bitflip", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.profile/1"
        assert payload["stages"]
        assert payload["queues"]  # threaded graph app has FIFO edges
        assert payload["critical_path"]["segments"]

    def test_out_writes_valid_file(self, tmp_path, capsys):
        from repro.obs import validate_profile_file

        out = tmp_path / "profile.json"
        assert main(["profile", "mandelbrot", "--json", "-o", str(out)]) == 0
        capsys.readouterr()
        payload = validate_profile_file(str(out))
        assert payload["app"] == "mandelbrot"

    def test_lime_file_target(self, bitflip_file, capsys):
        code = main(
            [
                "profile",
                bitflip_file,
                "110010111b",
                "--entry",
                "Bitflip.taskFlip",
                "--scheduler",
                "sequential",
            ]
        )
        assert code == 0
        assert "profile: bitflip" in capsys.readouterr().out

    def test_unknown_target_rejected(self, capsys):
        assert main(["profile", "nope-not-an-app"]) == 2
        assert "neither a file nor a suite app" in capsys.readouterr().err

    def test_baseline_clean_pass(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["profile", "mandelbrot", "--json", "-o", str(base)]) == 0
        capsys.readouterr()
        code = main(["profile", "mandelbrot", "--baseline", str(base)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_baseline_flags_injected_slowdown(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["profile", "mandelbrot", "--json", "-o", str(base)]) == 0
        capsys.readouterr()
        # Forcing the GPU map back onto the CPU inflates the simulated
        # time by orders of magnitude: the gate must trip.
        code = main(
            ["profile", "mandelbrot", "--cpu-only", "--baseline", str(base)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "REGRESSIONS" in err
        assert "simulated.total_s" in err

    def test_baseline_missing_file(self, capsys):
        code = main(
            ["profile", "mandelbrot", "--baseline", "/nonexistent.json"]
        )
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_writes_valid_report(self, tmp_path, capsys):
        from repro.service import validate_service_file

        out = tmp_path / "serve.json"
        code = main([
            "serve", "--tenants", "2", "--jobs-per-tenant", "2",
            "--scheduler", "sequential", "--verify", "-o", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "co-execution service" in text
        assert "bit-identical" in text
        report = validate_service_file(str(out))
        assert report["totals"]["completed"] == 4

    def test_serve_json_output_is_parseable(self, capsys):
        import json

        code = main([
            "serve", "--tenants", "1", "--jobs-per-tenant", "1",
            "--scheduler", "sequential", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.service/1"

    def test_serve_under_fault_plan(self, capsys):
        code = main([
            "serve", "--tenants", "2", "--jobs-per-tenant", "2",
            "--scheduler", "sequential", "--verify",
            "--plan", "examples/fault_plans/transient_gpu_window.json",
        ])
        assert code == 0
        assert "timing exempt" in capsys.readouterr().out
