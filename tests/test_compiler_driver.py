"""Tests for the top-level compiler driver and the compile report."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY
from repro.compiler import (
    CompileOptions,
    compile_program,
    compile_report,
)


class TestCompileResult:
    def test_components_present(self):
        result = compile_program(FIGURE1)
        assert result.bytecode_program.functions
        assert result.gpu_backend is not None
        assert result.fpga_backend is not None
        assert len(result.store) >= 3  # bytecode + gpu + fpga

    def test_bytecode_manifest_covers_all_tasks(self):
        result = compile_program(FIGURE1)
        manifest = result.bytecode_artifact.manifest
        all_ids = {
            stage.task_id
            for graph in result.task_graphs
            for stage in graph.stages
        }
        assert set(manifest.task_ids) == all_ids
        assert manifest.device == "bytecode"

    def test_disable_gpu(self):
        result = compile_program(
            FIGURE1, options=CompileOptions(enable_gpu=False)
        )
        assert result.gpu_backend is None
        assert result.store.for_device("gpu") == []
        assert result.store.for_device("fpga")  # unaffected

    def test_disable_fpga(self):
        result = compile_program(
            FIGURE1, options=CompileOptions(enable_fpga=False)
        )
        assert result.fpga_backend is None
        assert result.store.for_device("fpga") == []

    def test_options_recorded(self):
        result = compile_program(
            FIGURE1, options=CompileOptions(fpga_pipelined=True)
        )
        assert result.options["fpga_pipelined"] is True
        (artifact,) = result.store.for_device("fpga")
        assert artifact.manifest.properties["pipelined"] is True

    def test_artifact_texts(self):
        result = compile_program(SAXPY)
        texts = result.artifact_texts("gpu")
        assert "gpu:map:Saxpy.axpy" in texts
        assert "__kernel" in texts["gpu:map:Saxpy.axpy"]

    def test_unoptimized_compilation(self):
        result = compile_program(
            FIGURE1, options=CompileOptions(run_optimizations=False)
        )
        assert result.bytecode_program.functions

    def test_filename_in_errors(self):
        from repro.errors import LimeTypeError

        with pytest.raises(LimeTypeError) as exc:
            compile_program(
                "class T { static int f() { return true; } }",
                filename="myfile.lime",
            )
        assert "myfile.lime" in str(exc.value)


class TestCompileReport:
    def test_report_sections(self):
        report = compile_report(compile_program(FIGURE1))
        assert "task graphs:" in report
        assert "artifacts:" in report
        assert "exclusions:" in report

    def test_report_lists_graph_shape(self):
        report = compile_report(compile_program(FIGURE1))
        assert "source(1) => [flip] => sink" in report

    def test_report_exclusion_reasons(self):
        source = """
        class T {
            local static double f(double x) { return Math.exp(x); }
            static void m(double[[]] xs, double[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        report = compile_report(compile_program(source))
        assert "[fpga" in report
        assert "synthesizable" in report or "float" in report

    def test_report_no_graphs(self):
        report = compile_report(compile_program("class Empty { }"))
        assert "(none discovered statically)" in report

    def test_report_no_exclusions(self):
        report = compile_report(compile_program("class Empty { }"))
        assert "(none)" in report


class TestManifestContract:
    def test_every_artifact_has_unique_id(self):
        from repro.apps import SUITE

        for name, spec in SUITE.items():
            result = compile_program(spec.source)
            ids = [a.artifact_id for a in result.store.all()]
            assert len(ids) == len(set(ids)), name

    def test_gpu_filter_manifests_reference_graph(self):
        result = compile_program(FIGURE1)
        for artifact in result.store.for_device("gpu"):
            if artifact.payload.kind == "filter":
                assert artifact.manifest.graph_id is not None
                assert artifact.manifest.source_language == "opencl"

    def test_fpga_manifest_properties(self):
        result = compile_program(FIGURE1)
        (artifact,) = result.store.for_device("fpga")
        props = artifact.manifest.properties
        assert {"luts", "flipflops", "brams", "fmax_hz"} <= set(props)

    def test_manifest_implements(self):
        result = compile_program(FIGURE1)
        flip_id = result.task_graphs[0].stages[1].task_id
        gpu_filters = [
            a
            for a in result.store.for_device("gpu")
            if a.manifest.implements(flip_id)
        ]
        assert len(gpu_filters) == 1
