"""Unit tests for the device models: CPU, GPU timing, RTL, VCD,
synthesis."""

import pytest

from repro.devices.cpu import CPUDevice, CPUSpec
from repro.devices.fpga.rtl import Netlist
from repro.devices.fpga.vcd import VCDWriter, _short_id
from repro.devices.gpu.timing import (
    GTX580,
    GPUSpec,
    data_parallel_time,
    reduction_time,
    warp_divergence_cycles,
)
from repro.errors import SimulationError


class TestCPUDevice:
    def test_time_conversion(self):
        device = CPUDevice(CPUSpec(clock_hz=1e9, ipc=1.0))
        timing = device.time_for_cycles(5_000_000)
        assert timing.seconds == pytest.approx(5e-3)
        assert timing.cycles == 5_000_000

    def test_default_spec(self):
        assert CPUDevice().spec.clock_hz == 3.0e9


class TestGPUTiming:
    def test_warp_divergence_uniform(self):
        cycles = [100] * 64
        assert warp_divergence_cycles(cycles, 32) == 6400

    def test_warp_divergence_penalizes_slow_lane(self):
        cycles = [1] * 31 + [1000]  # one slow lane in the warp
        assert warp_divergence_cycles(cycles, 32) == 32_000

    def test_partial_warp(self):
        assert warp_divergence_cycles([10] * 5, 32) == 50

    def test_compute_bound_kernel(self):
        timing = data_parallel_time(
            GTX580, [10_000] * 1024, bytes_in=4096, bytes_out=4096
        )
        assert timing.compute_s > timing.memory_s
        assert timing.kernel_s == pytest.approx(
            timing.launch_s + timing.compute_s
        )

    def test_memory_bound_kernel(self):
        timing = data_parallel_time(
            GTX580, [1] * 1024, bytes_in=100_000_000, bytes_out=0
        )
        assert timing.memory_s > timing.compute_s

    def test_uncoalesced_penalty(self):
        fast = data_parallel_time(
            GTX580, [1] * 256, 1_000_000, 0, coalesced=True
        )
        slow = data_parallel_time(
            GTX580, [1] * 256, 1_000_000, 0, coalesced=False
        )
        assert slow.memory_s == pytest.approx(
            fast.memory_s * GTX580.uncoalesced_penalty
        )

    def test_reduction_log_depth(self):
        small = reduction_time(GTX580, 16, 10.0, 64)
        large = reduction_time(GTX580, 1 << 20, 10.0, 1 << 22)
        assert small.details["tree_depth"] == 4
        assert large.details["tree_depth"] == 20

    def test_reduction_empty_rejected(self):
        with pytest.raises(ValueError):
            reduction_time(GTX580, 0, 1.0, 0)

    def test_custom_spec(self):
        tiny = GPUSpec(name="tiny", cuda_cores=8, clock_hz=1e8)
        big_t = data_parallel_time(tiny, [1000] * 512, 0, 0)
        fast_t = data_parallel_time(GTX580, [1000] * 512, 0, 0)
        assert big_t.compute_s > fast_t.compute_s * 100


class TestNetlist:
    def test_combinational_loop_detected(self):
        net = Netlist("loop")
        net.add_wire("a", 1)
        net.add_wire("b", 1)
        net.assign("a", lambda e: e["b"], ["b"])
        net.assign("b", lambda e: e["a"], ["a"])
        with pytest.raises(SimulationError):
            net.ordered_assigns()

    def test_multiple_drivers_detected(self):
        net = Netlist("dup")
        net.add_wire("a", 1)
        net.assign("a", lambda e: 0, [])
        net.assign("a", lambda e: 1, [])
        with pytest.raises(SimulationError):
            net.ordered_assigns()

    def test_topological_settle(self):
        net = Netlist("chain")
        net.add_input("x", 8)
        net.add_wire("y", 8)
        net.add_wire("z", 8)
        # Declare z first but make it depend on y: order must fix it.
        net.assign("z", lambda e: e["y"] + 1, ["y"])
        net.assign("y", lambda e: e["x"] * 2, ["x"])
        env = net.initial_state()
        env["x"] = 3
        settled = net.settle(env)
        assert settled["y"] == 6
        assert settled["z"] == 7

    def test_width_masking(self):
        net = Netlist("mask")
        net.add_input("x", 8)
        net.add_wire("y", 4)
        net.assign("y", lambda e: e["x"], ["x"])
        env = net.initial_state()
        env["x"] = 0xFF
        assert net.settle(env)["y"] == 0xF

    def test_register_semantics_two_phase(self):
        # A register chain shifts one position per clock.
        net = Netlist("shift")
        net.add_input("d", 1)
        net.add_reg("q1", 1)
        net.add_reg("q2", 1)
        net.on_clock("q1", lambda e: e["d"])
        net.on_clock("q2", lambda e: e["q1"])
        env = net.initial_state()
        env["d"] = 1
        env = net.clock_edge(net.settle(env))
        assert env["q1"] == 1 and env["q2"] == 0  # no shoot-through
        env["d"] = 0
        env = net.clock_edge(net.settle(env))
        assert env["q1"] == 0 and env["q2"] == 1

    def test_comb_assign_to_register_rejected(self):
        net = Netlist("bad")
        net.add_reg("r", 1)
        with pytest.raises(SimulationError):
            net.assign("r", lambda e: 1, [])

    def test_clock_update_of_wire_rejected(self):
        net = Netlist("bad2")
        net.add_wire("w", 1)
        with pytest.raises(SimulationError):
            net.on_clock("w", lambda e: 1)


class TestVCD:
    def test_short_ids_unique(self):
        ids = {_short_id(i) for i in range(500)}
        assert len(ids) == 500

    def test_change_deduplication(self):
        vcd = VCDWriter("m")
        vcd.declare("sig", 1)
        vcd.record(0, "sig", 0)
        vcd.record(4, "sig", 0)  # duplicate: dropped
        vcd.record(8, "sig", 1)
        assert vcd.transitions("sig") == [(0, 0), (8, 1)]

    def test_rising_edges(self):
        vcd = VCDWriter("m")
        vcd.declare("sig", 1)
        for t, v in [(0, 0), (4, 1), (8, 0), (12, 1)]:
            vcd.record(t, "sig", v)
        assert vcd.rising_edges("sig") == [4, 12]

    def test_render_format(self):
        vcd = VCDWriter("top", timescale="1ns")
        vcd.declare("clk", 1)
        vcd.declare("bus", 8)
        vcd.record(0, "clk", 1)
        vcd.record(0, "bus", 0xA5)
        text = vcd.render()
        assert "$timescale 1ns $end" in text
        assert "$scope module top $end" in text
        assert "$var wire 1" in text
        assert "$var wire 8" in text
        assert "b10100101 " in text  # multi-bit binary format

    def test_undeclared_signal_rejected(self):
        vcd = VCDWriter("m")
        with pytest.raises(KeyError):
            vcd.record(0, "ghost", 1)


class TestSynthesisEstimates:
    def test_wider_datapath_costs_more(self):
        from repro.devices.fpga.synthesis import estimate
        from repro.ir import nodes as ir
        from repro.lime import types as ty

        narrow = ir.EBinary(
            ty.BIT,
            "^",
            ir.ELocal(ty.BIT, "a"),
            ir.EConst(ty.BIT, __import__("repro.values", fromlist=["Bit"]).Bit(1)),
        )
        wide = ir.EBinary(
            ty.INT, "+", ir.ELocal(ty.INT, "a"), ir.EConst(ty.INT, 1)
        )
        r_narrow = estimate("narrow", narrow, 1, 1)
        r_wide = estimate("wide", wide, 32, 32)
        assert r_wide.luts > r_narrow.luts

    def test_retiming_raises_fmax(self):
        from repro.devices.fpga.synthesis import estimate
        from repro.ir import nodes as ir
        from repro.lime import types as ty

        deep = ir.ELocal(ty.INT, "x")
        for _ in range(10):
            deep = ir.EBinary(ty.INT, "+", deep, ir.EConst(ty.INT, 1))
        plain = estimate("m", deep, 32, 32)
        retimed = estimate("m", deep, 32, 32, compute_stages=4)
        assert retimed.fmax_hz > plain.fmax_hz * 2
        assert retimed.flipflops > plain.flipflops  # extra stage regs

    def test_ii_pipelining_adds_skid_register_only(self):
        from repro.devices.fpga.synthesis import estimate
        from repro.ir import nodes as ir
        from repro.lime import types as ty

        expr = ir.EBinary(
            ty.INT, "+", ir.ELocal(ty.INT, "x"), ir.EConst(ty.INT, 1)
        )
        plain = estimate("m", expr, 32, 32, pipelined=False)
        piped = estimate("m", expr, 32, 32, pipelined=True)
        assert piped.fmax_hz == plain.fmax_hz  # II does not cut logic
        assert piped.flipflops > plain.flipflops
