"""Diagnostic quality: every compile error carries a source position
and a readable message."""

import pytest

from repro.errors import (
    IsolationError,
    LimeSyntaxError,
    LimeTypeError,
    TaskGraphError,
)
from repro.lime import analyze, parse


def error_for(source, exc=LimeTypeError):
    with pytest.raises(exc) as info:
        analyze(source)
    return str(info.value)


class TestPositions:
    def test_syntax_error_position(self):
        with pytest.raises(LimeSyntaxError) as info:
            parse("class T {\n  static void m() {\n    int x = ;\n  }\n}")
        message = str(info.value)
        assert ":3:" in message  # line 3

    def test_type_error_position(self):
        message = error_for(
            "class T {\n  static int f() {\n    return true;\n  }\n}"
        )
        assert ":3:" in message

    def test_filename_propagates(self):
        with pytest.raises(LimeSyntaxError) as info:
            parse("class {", filename="broken.lime")
        assert "broken.lime" in str(info.value)


class TestMessageQuality:
    def test_unknown_name_names_the_identifier(self):
        message = error_for(
            "class T { static int f() { return missing; } }"
        )
        assert "missing" in message

    def test_isolation_error_names_both_methods(self):
        message = error_for(
            """
            class T {
                static int g(int x) { return x; }
                local static int f(int x) { return g(x); }
            }
            """,
            IsolationError,
        )
        assert "T.f" in message and "T.g" in message

    def test_connect_mismatch_shows_types(self):
        message = error_for(
            """
            class T {
                local static bit f(bit b) { return b; }
                local static int g(int x) { return x; }
                static void m(bit[[]] xs, int[] out) {
                    var t = xs.source(1) => task f => task g => out.sink();
                }
            }
            """,
            TaskGraphError,
        )
        assert "bit" in message and "int" in message

    def test_arity_mismatch_counts(self):
        message = error_for(
            """
            class T {
                static int f(int a, int b) { return a + b; }
                static int g() { return f(1); }
            }
            """
        )
        assert "2" in message and "1" in message

    def test_value_array_store_mentions_read_only(self):
        message = error_for(
            "class T { static void m(int[[]] xs) { xs[0] = 1; } }",
            IsolationError,
        )
        assert "read-only" in message

    def test_unknown_type_named(self):
        message = error_for(
            "class T { static Widget m() { return 0; } }"
        )
        assert "Widget" in message

    def test_reserved_math_method_message(self):
        message = error_for(
            "class T { static double m() { return Math.cbrt(8.0); } }"
        )
        assert "cbrt" in message


class TestShapeDiagnostics:
    def test_shape_error_is_compile_time(self):
        # "the programmer is informed at compile time with an
        # appropriate error message" (Section 3).
        from repro.compiler import compile_program

        with pytest.raises(TaskGraphError) as info:
            compile_program(
                """
                class T {
                    local static bit f(bit b) { return b; }
                    static void m(bit[[]] xs, bit[] out, boolean c) {
                        if (c) {
                            var t = xs.source(1) => ([ task f ]) => out.sink();
                            t.finish();
                        }
                    }
                }
                """
            )
        message = str(info.value)
        assert "T.m" in message
        assert "relocation" in message
