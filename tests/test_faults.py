"""Unit tests for the deterministic fault-injection harness."""

import json

import pytest

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceTimeoutError,
    MarshalingError,
)
from repro.obs import Tracer
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_INJECTOR,
    kill_all_devices_plan,
    load_fault_plan,
)


class TestFaultSpec:
    def test_defaults_valid(self):
        spec = FaultSpec()
        assert spec.site == "device"
        assert spec.error == "device"
        assert spec.target == "*"

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="kernel")

    def test_unknown_error_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(error="explosion")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(probability=-0.1)

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(times=0)

    def test_on_calls_one_based(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(on_calls=(0,))

    def test_matching_is_fnmatch_over_any_target(self):
        spec = FaultSpec(target="gpu:*")
        assert spec.matches("device", ["gpu:Saxpy.axpy", "t:f0"])
        assert not spec.matches("device", ["fpga:Bitflip.flip"])
        assert not spec.matches("marshal.to_device", ["gpu:Saxpy.axpy"])


class TestFaultPlan:
    def test_round_trip_through_dict(self):
        plan = FaultPlan(
            [
                FaultSpec(site="device", error="timeout", target="t:*",
                          on_calls=(1, 3), times=2),
                FaultSpec(site="marshal.to_device", error="marshaling",
                          target="gpu", probability=0.25),
            ],
            seed=99,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 99
        assert clone.specs == plan.specs

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "faults": [
                {"site": "device", "error": "device", "target": "*",
                 "comment": "comments are ignored"},
            ],
        }))
        plan = load_fault_plan(str(path))
        assert plan.seed == 3
        assert len(plan) == 1

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_fault_plan(str(path))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(
                {"faults": [{"site": "device", "sit": "device"}]}
            )

    def test_kill_all_plan(self):
        plan = kill_all_devices_plan(seed=5)
        assert plan.seed == 5
        injector = FaultInjector(plan)
        with pytest.raises(DeviceError):
            injector.check("device", ["anything"])


class TestFaultInjector:
    def test_fires_mapped_error_classes(self):
        for error, exc_type in [
            ("device", DeviceError),
            ("marshaling", MarshalingError),
            ("timeout", DeviceTimeoutError),
        ]:
            injector = FaultInjector(
                FaultPlan([FaultSpec(error=error)])
            )
            with pytest.raises(exc_type):
                injector.check("device", ["t:x"])

    def test_timeout_carries_context(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(error="timeout")])
        )
        with pytest.raises(DeviceTimeoutError) as err:
            injector.check("device", ["t:x"], device="gpu", task_id="t:x")
        assert err.value.task_id == "t:x"
        assert err.value.device == "gpu"

    def test_on_calls_selects_call_indices(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(on_calls=(2,))])
        )
        injector.check("device", ["t:x"])  # call 1: no fire
        with pytest.raises(DeviceError):
            injector.check("device", ["t:x"])  # call 2: fires
        injector.check("device", ["t:x"])  # call 3: no fire
        assert [f.call_index for f in injector.log] == [2]

    def test_times_caps_fires(self):
        injector = FaultInjector(FaultPlan([FaultSpec(times=2)]))
        for _ in range(2):
            with pytest.raises(DeviceError):
                injector.check("device", ["t:x"])
        injector.check("device", ["t:x"])  # cap reached: passes through
        assert injector.fired() == 2

    def test_unmatched_target_never_counts(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(target="t:other", on_calls=(1,))])
        )
        injector.check("device", ["t:x"])
        with pytest.raises(DeviceError):
            injector.check("device", ["t:other"])  # its own call #1

    def test_probability_deterministic_under_seed(self):
        def fire_pattern(seed):
            injector = FaultInjector(
                FaultPlan([FaultSpec(probability=0.5)], seed=seed)
            )
            pattern = []
            for _ in range(64):
                try:
                    injector.check("device", ["t:x"])
                    pattern.append(0)
                except DeviceError:
                    pattern.append(1)
            return pattern

        first = fire_pattern(seed=10)
        assert first == fire_pattern(seed=10)
        assert 0 < sum(first) < 64  # actually probabilistic
        assert first != fire_pattern(seed=11)

    def test_specs_have_independent_rngs(self):
        # Interleaving calls to a second spec must not perturb the
        # first spec's fire pattern.
        spec = FaultSpec(probability=0.5, target="t:a")
        other = FaultSpec(probability=0.5, target="t:b")

        def pattern(plan, targets):
            injector = FaultInjector(plan)
            out = []
            for target in targets:
                try:
                    injector.check("device", [target])
                    out.append((target, 0))
                except DeviceError:
                    out.append((target, 1))
            return [v for t, v in out if t == "t:a"]

        alone = pattern(FaultPlan([spec], seed=4), ["t:a"] * 16)
        interleaved = pattern(
            FaultPlan([spec, other], seed=4), ["t:a", "t:b"] * 16
        )
        assert alone == interleaved

    def test_counters_and_log_record_injections(self):
        tracer = Tracer()
        injector = FaultInjector(
            FaultPlan([FaultSpec(times=3)]), tracer=tracer
        )
        for _ in range(3):
            with pytest.raises(DeviceError):
                injector.check("device", ["t:x"])
        assert tracer.counters.get("fault.injected[device]") == 3
        assert len(tracer.find("fault.injected")) == 3
        assert [f.target for f in injector.log] == ["t:x"] * 3

    def test_null_injector_is_inert(self):
        NULL_INJECTOR.check("device", ["t:x"])
        assert NULL_INJECTOR.fired() == 0


class TestBatchedCallIndices:
    """``check(count=N)`` keeps call indices element-accurate.

    A batched boundary crossing of N values is ONE physical call but N
    *logical* transfers; the injector must count it as N so fault plans
    written against the per-element path fire at the same logical
    points under any batch size (the differential suite's contract)."""

    def test_count_n_equals_n_scalar_checks(self):
        plan = lambda: FaultPlan([FaultSpec(on_calls=(4,), times=1)])
        batched = FaultInjector(plan())
        with pytest.raises(DeviceError):
            batched.check("device", ["t:x"], count=10)
        scalar = FaultInjector(plan())
        for _ in range(3):
            scalar.check("device", ["t:x"])
        with pytest.raises(DeviceError):
            scalar.check("device", ["t:x"])
        assert [f.call_index for f in batched.log] == [4]
        assert [(f.spec_index, f.site, f.target, f.call_index)
                for f in batched.log] == [
            (f.spec_index, f.site, f.target, f.call_index)
            for f in scalar.log
        ]

    def test_fire_leaves_counter_at_firing_index(self):
        # on_calls (2, 5): the first batch of 3 fires at logical call
        # 2 and leaves calls 3.. unconsumed; the next batch resumes at
        # 3 and fires at 5 — exactly the scalar path's bookkeeping.
        injector = FaultInjector(FaultPlan([FaultSpec(on_calls=(2, 5))]))
        with pytest.raises(DeviceError):
            injector.check("device", ["t:x"], count=3)
        with pytest.raises(DeviceError):
            injector.check("device", ["t:x"], count=3)
        injector.check("device", ["t:x"], count=3)  # calls 6-8
        assert [f.call_index for f in injector.log] == [2, 5]

    @pytest.mark.parametrize("chunk", [1, 7, 8, 64])
    def test_probabilistic_fire_points_invariant_under_chunking(self, chunk):
        # Drive 64 logical calls through the injector in ``chunk``-size
        # batches, resuming after each fire (as the supervisor's retry
        # does); the logical indices that fire must match the scalar
        # path's exactly — the RNG draw sequence is per logical call,
        # not per physical crossing.
        def fire_points(step):
            injector = FaultInjector(
                FaultPlan([FaultSpec(probability=0.5)], seed=12)
            )
            fired, consumed = [], 0
            while consumed < 64:
                take = min(step, 64 - consumed)
                try:
                    injector.check("device", ["t:x"], count=take)
                    consumed += take
                except DeviceError:
                    consumed = injector.log[-1].call_index
                    fired.append(consumed)
            return fired

        scalar = fire_points(1)
        assert 0 < len(scalar) < 64  # actually probabilistic
        assert fire_points(chunk) == scalar

    def test_count_zero_is_a_no_op(self):
        injector = FaultInjector(FaultPlan([FaultSpec(on_calls=(1,))]))
        injector.check("device", ["t:x"], count=0)
        assert injector.fired() == 0
        with pytest.raises(DeviceError):
            injector.check("device", ["t:x"])

    def test_null_injector_accepts_count(self):
        NULL_INJECTOR.check("device", ["t:x"], count=128)
        assert NULL_INJECTOR.fired() == 0
