"""Tests for automatic datapath retiming (multi-stage compute).

The default module matches Figure 4 exactly (one compute cycle); with
``fpga_max_stage_depth`` the backend cuts deep datapaths (CRC, parity)
into register-separated stages, trading latency for clock frequency —
what a behavioral synthesis flow does when it retimes.
"""

import pytest

from repro.apps import SUITE
from repro.compiler import CompileOptions, compile_program
from repro.devices.fpga import FPGASimulator
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_INT, ValueArray

CRC_SOURCE = SUITE["crc8"].source


def crc_bundle(**options):
    compiled = compile_program(
        CRC_SOURCE, options=CompileOptions(**options)
    )
    (artifact,) = compiled.store.for_device("fpga")
    return artifact.payload


def crc8_ref(b):
    crc = b & 255
    for _ in range(8):
        fb = crc & 1
        crc >>= 1
        if fb:
            crc ^= 0x8C
    return crc


class TestRetiming:
    def test_default_single_stage(self):
        bundle = crc_bundle()
        assert bundle.compute_stages == 1

    def test_deep_datapath_gets_stages(self):
        bundle = crc_bundle(fpga_max_stage_depth=6)
        assert bundle.compute_stages > 1
        assert bundle.synthesis.fmax_hz > crc_bundle().synthesis.fmax_hz

    def test_retimed_module_still_correct(self):
        bundle = crc_bundle(fpga_max_stage_depth=6)
        items = [0, 1, 0x55, 0xAA, 0xFF, 42, 200]
        result = FPGASimulator().run_stream(
            bundle.elaborate(), [bundle.encode(x) for x in items]
        )
        assert [bundle.decode(r) for r in result.outputs] == [
            crc8_ref(x) for x in items
        ]

    def test_retimed_latency_grows(self):
        plain = crc_bundle()
        retimed = crc_bundle(fpga_max_stage_depth=6)
        sim = FPGASimulator()
        plain_run = sim.run_stream(
            plain.elaborate(), [plain.encode(1)], return_to_zero=True
        )
        retimed_run = FPGASimulator().run_stream(
            retimed.elaborate(), [retimed.encode(1)], return_to_zero=True
        )
        extra = retimed.compute_stages - 1
        assert retimed_run.cycles == plain_run.cycles + extra

    def test_verilog_text_shows_stages(self):
        bundle = crc_bundle(fpga_max_stage_depth=6)
        text = bundle.verilog()
        assert f"compute stages (retiming): {bundle.compute_stages}" in text
        assert "comp2_valid" in text
        assert f"initiation interval: {2 + bundle.compute_stages}" in text

    def test_default_verilog_unchanged(self):
        text = crc_bundle().verilog()
        assert "comp2_valid" not in text
        assert "initiation interval: 3" in text

    def test_pipelined_retimed_throughput(self):
        """II=1 + retiming: deep logic at ~1 item/cycle with a higher
        modeled clock."""
        compiled = compile_program(
            CRC_SOURCE,
            options=CompileOptions(
                fpga_pipelined=True, fpga_max_stage_depth=6
            ),
        )
        (artifact,) = compiled.store.for_device("fpga")
        bundle = artifact.payload
        items = [i % 256 for i in range(64)]
        result = FPGASimulator().run_stream(
            bundle.elaborate(), [bundle.encode(x) for x in items]
        )
        assert [bundle.decode(r) for r in result.outputs] == [
            crc8_ref(x) for x in items
        ]
        assert result.throughput_items_per_cycle > 0.8

    def test_end_to_end_through_runtime(self):
        compiled = compile_program(
            CRC_SOURCE, options=CompileOptions(fpga_max_stage_depth=6)
        )
        crc_id = compiled.task_graphs[0].stages[1].task_id
        runtime = Runtime(
            compiled,
            RuntimeConfig(
                policy=SubstitutionPolicy(directives={crc_id: "fpga"})
            ),
        )
        xs = ValueArray(KIND_INT, [3, 77, 250])
        assert list(runtime.call("Crc8.checksums", [xs])) == [
            crc8_ref(x) for x in [3, 77, 250]
        ]

    def test_retimed_runtime_faster_for_long_streams(self):
        """Higher Fmax wins once the stream amortizes the latency."""

        def simulated_time(**options):
            compiled = compile_program(
                CRC_SOURCE, options=CompileOptions(**options)
            )
            crc_id = compiled.task_graphs[0].stages[1].task_id
            runtime = Runtime(
                compiled,
                RuntimeConfig(
                    policy=SubstitutionPolicy(directives={crc_id: "fpga"})
                ),
            )
            xs = ValueArray(KIND_INT, [i % 256 for i in range(512)])
            outcome = runtime.run("Crc8.checksums", [xs])
            return outcome.ledger.offloads[0].kernel_s

        plain = simulated_time(fpga_pipelined=True)
        retimed = simulated_time(
            fpga_pipelined=True, fpga_max_stage_depth=6
        )
        assert retimed < plain
