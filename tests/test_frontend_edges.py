"""Remaining frontend edge cases: grammar corners, shape-analysis
aliasing, numeric promotion details."""

import pytest

from repro.backends.bytecode import Interpreter, compile_module
from repro.errors import LimeTypeError, TaskGraphError
from repro.ir import build_ir
from repro.lime import analyze, parse
from repro.lime import ast_nodes as ast


def run(source, method, args):
    module = build_ir(analyze(source))
    return Interpreter(compile_module(module)).call(method, args)


class TestGrammarCorners:
    def test_else_if_chain(self):
        source = """
        class T {
            static int grade(int score) {
                if (score >= 90) { return 4; }
                else if (score >= 80) { return 3; }
                else if (score >= 70) { return 2; }
                else { return 0; }
            }
        }
        """
        assert run(source, "T.grade", [95]) == 4
        assert run(source, "T.grade", [85]) == 3
        assert run(source, "T.grade", [75]) == 2
        assert run(source, "T.grade", [10]) == 0

    def test_statement_without_braces(self):
        source = (
            "class T { static int m(int x) "
            "{ if (x > 0) return 1; else return -1; } }"
        )
        assert run(source, "T.m", [5]) == 1
        assert run(source, "T.m", [-5]) == -1

    def test_empty_statement(self):
        source = "class T { static int m() { ;; return 1; } }"
        assert run(source, "T.m", []) == 1

    def test_nested_ternaries(self):
        source = (
            "class T { static int sign(int x) "
            "{ return x > 0 ? 1 : x < 0 ? -1 : 0; } }"
        )
        assert run(source, "T.sign", [7]) == 1
        assert run(source, "T.sign", [-7]) == -1
        assert run(source, "T.sign", [0]) == 0

    def test_comment_between_tokens(self):
        source = (
            "class T { static int m() { return /* answer */ 42; } }"
        )
        assert run(source, "T.m", []) == 42

    def test_for_with_empty_slots(self):
        source = """
        class T {
            static int m() {
                int i = 0;
                for (;;) {
                    i += 1;
                    if (i == 5) { break; }
                }
                return i;
            }
        }
        """
        assert run(source, "T.m", []) == 5

    def test_deeply_parenthesized(self):
        source = "class T { static int m() { return ((((1)))) + (((2))); } }"
        assert run(source, "T.m", []) == 3


class TestPromotionDetails:
    def test_compound_assign_narrows_back(self):
        # x += 2.5 on an int x truncates back to int (Java semantics).
        source = "class T { static int m(int x) { x += 2.5; return x; } }"
        assert run(source, "T.m", [1]) == 3

    def test_int_float_comparison(self):
        source = (
            "class T { static boolean m(int a, float b) "
            "{ return a < b; } }"
        )
        assert run(source, "T.m", [1, 1.5]) is True

    def test_long_int_mix(self):
        source = (
            "class T { static long m(long a, int b) { return a + b; } }"
        )
        assert run(source, "T.m", [2**40, 7]) == 2**40 + 7

    def test_float_double_mix_is_double(self):
        source = (
            "class T { static double m(float a) { return a + 0.5; } }"
        )
        assert run(source, "T.m", [0.25]) == 0.75


class TestShapeAliasing:
    def test_graph_alias_used_twice(self):
        # The same partial graph local connected into two pipelines:
        # stages keep one identity per syntactic node.
        source = """
        class T {
            local static int f(int x) { return x + 1; }
            static void m(int[[]] xs, int[] a) {
                var head = xs.source(1) => ([ task f ]);
                var g = head => a.<int>sink();
                g.finish();
            }
        }
        """
        module = build_ir(analyze(source))
        assert len(module.task_graphs) == 1
        assert module.task_graphs[0].describe() == (
            "source(1) => [f] => sink"
        )

    def test_graph_reassignment(self):
        source = """
        class T {
            local static int f(int x) { return x + 1; }
            local static int g(int x) { return x * 2; }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task f ]);
                t = t => ([ task g ]);
                var done = t => out.<int>sink();
                done.finish();
            }
        }
        """
        module = build_ir(analyze(source))
        (graph,) = module.task_graphs
        assert graph.describe() == "source(1) => [f] => [g] => sink"

    def test_unstarted_graph_produces_no_static_graph(self):
        source = """
        class T {
            local static int f(int x) { return x + 1; }
            static void m(int[[]] xs) {
                var t = xs.source(1) => task f;
            }
        }
        """
        module = build_ir(analyze(source))
        assert module.task_graphs == []


class TestMoreRejections:
    def test_value_class_cannot_have_task_method(self):
        source = """
        value class V {
            int x;
            V(int x0) { this.x = x0; }
            void build(int[[]] xs) {
                var t = xs.source(1);
            }
        }
        """
        from repro.errors import IsolationError

        with pytest.raises(IsolationError):
            analyze(source)

    def test_finish_twice_is_harmless(self):
        # finish(); finish(); — the second join is a no-op.
        source = """
        class T {
            local static int f(int x) { return x; }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => task f => out.<int>sink();
                t.finish();
                t.finish();
            }
        }
        """
        from repro.apps import compile_app  # noqa: F401  (env warmup)
        from repro.compiler import compile_program
        from repro.runtime import Runtime
        from repro.values import KIND_INT, MutableArray, ValueArray

        runtime = Runtime(compile_program(source))
        xs = ValueArray(KIND_INT, [1, 2])
        out = MutableArray.allocate(KIND_INT, 2)
        runtime.call("T.m", [xs, out])
        assert list(out) == [1, 2]
