"""Differential conformance: fusion must be invisible except in time.

Fusion only changes *how many times the boundary is crossed* — never
what any app computes. For every app in the suite, on both schedulers,
the three fusion modes (``off``, ``auto``, a replayed ``plan``) must
produce bit-identical printed output and return values; the replayed
plan must additionally reproduce the ``auto`` run exactly — same
simulated seconds, same counters — because a saved ``repro.fusion/1``
plan is a deterministic record of what ``auto`` decided (mirrors
``test_cache_differential.py``).

The fault half proves resilience is equally mode-blind: under a
kill-every-device plan, ``auto`` and the replayed plan demote the same
spans in the same order and still compute the cpu-only answer.
"""

import pytest

from repro.apps import SUITE, compile_app
from repro.compiler import CompileOptions
from repro.ir.fusion import FusionOptions, FusionPlan
from repro.obs import Tracer
from repro.runtime import (
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
    kill_all_devices_plan,
)
from tests.test_suite_equivalence import FUSABLE, SMALL_ARGS

AUTO = CompileOptions(fusion=FusionOptions(mode="auto"))


@pytest.fixture(scope="module")
def plan_paths(tmp_path_factory):
    """One ``auto`` compile per app, its plan saved to disk — every
    replay test reloads from these files, round-tripping the JSON."""
    root = tmp_path_factory.mktemp("fusion-plans")
    paths = {}
    for name in sorted(SUITE):
        compiled = compile_app(name, AUTO)
        path = str(root / f"{name}.plan.json")
        compiled.fusion_plan.save(path)
        paths[name] = path
    return paths


def _run(compiled, name, scheduler, fusion="auto", fault_plan=None):
    entry, args = SMALL_ARGS[name]()
    tracer = Tracer()
    config = RuntimeConfig(
        scheduler=scheduler,
        tracer=tracer,
        fusion=fusion,
        fault_plan=fault_plan,
        retry=RetryPolicy(max_attempts=2),
    )
    runtime = Runtime(compiled, config)
    outcome = runtime.run(entry, args)
    return outcome, tracer, runtime


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
@pytest.mark.parametrize("name", sorted(SUITE))
def test_fusion_modes_bit_identical(name, scheduler, plan_paths):
    generic = compile_app(name)
    fused = compile_app(name, AUTO)
    replayed = compile_app(
        name,
        CompileOptions(
            fusion=FusionOptions(mode="plan", plan_path=plan_paths[name])
        ),
    )
    # The replayed compile applied exactly the groups auto planned.
    assert [g.key() for g in replayed.fusion_plan.groups] == [
        g.key() for g in fused.fusion_plan.groups
    ], name

    off, _, _ = _run(generic, name, scheduler, fusion="off")
    auto, auto_tracer, _ = _run(fused, name, scheduler, fusion="auto")
    plan, plan_tracer, _ = _run(replayed, name, scheduler, fusion="plan")

    # Values and output are mode-invariant, bit for bit.
    assert off.output == auto.output == plan.output, name
    assert repr(off.value) == repr(auto.value) == repr(plan.value), name

    # The replay reproduces auto exactly: simulated seconds and the
    # deterministic counter registry (fusion changes time vs off by
    # design). FIFO wait counters are wall-clock thread waits, the one
    # nondeterministic family, so they are excluded.
    assert auto.seconds == plan.seconds, name

    def deterministic(tracer):
        return {
            key: value
            for key, value in tracer.counters.snapshot().items()
            if "wait" not in key
        }

    assert deterministic(auto_tracer) == deterministic(plan_tracer), name


@pytest.mark.parametrize("name", sorted(SUITE))
def test_fault_logs_mode_invariant(name, plan_paths):
    """Under a kill-every-device plan the fused and replayed runs
    demote the same spans in the same order, and both still compute
    the cpu-only answer (graceful degradation is mode-blind)."""
    fused = compile_app(name, AUTO)
    replayed = compile_app(
        name,
        CompileOptions(
            fusion=FusionOptions(mode="plan", plan_path=plan_paths[name])
        ),
    )
    entry, args = SMALL_ARGS[name]()
    reference = Runtime(
        fused,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)

    auto, _, auto_rt = _run(
        fused, name, "sequential", fault_plan=kill_all_devices_plan()
    )
    plan, _, plan_rt = _run(
        replayed,
        name,
        "sequential",
        fusion="plan",
        fault_plan=kill_all_devices_plan(),
    )

    def log(runtime):
        return [
            (r.task_id, r.device, r.attempts, str(r.error))
            for r in runtime.demotion_log
        ]

    assert log(auto_rt) == log(plan_rt), name
    assert auto.output == plan.output == reference.output, name
    assert repr(auto.value) == repr(plan.value) == repr(reference.value), name


def test_plan_file_round_trips(plan_paths):
    """The saved plan reloads to an equal plan object (schema check
    included) for every app — the replay fixture is honest JSON."""
    for name, path in plan_paths.items():
        plan = FusionPlan.load(path)
        original = compile_app(name, AUTO).fusion_plan
        assert plan.to_dict() == original.to_dict(), name
