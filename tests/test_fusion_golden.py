"""Golden-file regression tests for the fusion pass (docs/FUSION.md).

These freeze the canonical fused-IR printer output and the
``repro.fusion/1`` plan JSON for the two fusable suite apps — the
task-graph span (gray_pipeline) and the IR map chain (photo_pipeline).
A diff here means the fusion planner, the composite-kernel
synthesizer, or the plan schema changed; if the change is intentional,
regenerate with::

    REPRO_REGEN_FUSION_GOLDEN=1 PYTHONPATH=src:. \\
        python -m pytest tests/test_fusion_golden.py

(mirrors ``tests/golden/wire/``; see ``tests/golden/fusion/README``).
"""

import os

import pytest

from repro.apps import compile_app
from repro.compiler import CompileOptions
from repro.ir.fusion import FusionOptions, render_fused_ir, validate_plan_data

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "fusion")
REGEN = os.environ.get("REPRO_REGEN_FUSION_GOLDEN") == "1"
AUTO = CompileOptions(fusion=FusionOptions(mode="auto"))

CASES = ["gray_pipeline", "photo_pipeline"]


def _current(name):
    compiled = compile_app(name, AUTO)
    return (
        render_fused_ir(compiled.module, compiled.fusion_plan),
        compiled.fusion_plan.dumps(),
    )


def _golden_path(name, suffix):
    return os.path.join(GOLDEN_DIR, f"{name}.{suffix}")


def _check(path, current):
    if REGEN:
        with open(path, "w") as fh:
            fh.write(current)
        pytest.skip(f"regenerated {path}")
    with open(path) as fh:
        assert current == fh.read(), (
            f"fusion output drifted from {path}; regenerate with "
            "REPRO_REGEN_FUSION_GOLDEN=1 if the change is intentional"
        )


@pytest.mark.parametrize("name", CASES)
def test_fused_ir_locked(name):
    ir_text, _ = _current(name)
    _check(_golden_path(name, "fused-ir.txt"), ir_text)


@pytest.mark.parametrize("name", CASES)
def test_plan_locked(name):
    _, plan_json = _current(name)
    _check(_golden_path(name, "plan.json"), plan_json)


class TestGoldenContent:
    """Sanity anchors inside the golden text itself (so a regenerated
    golden cannot silently encode a broken pass)."""

    def test_map_chain_anchors(self):
        with open(_golden_path("photo_pipeline", "fused-ir.txt")) as fh:
            text = fh.read()
        assert text.startswith("fused-ir repro.fusion/1")
        assert "map-chain" in text
        assert "Photo.fused_Photo_brighten__Photo_clamp8" in text

    def test_graph_span_anchors(self):
        with open(_golden_path("gray_pipeline", "fused-ir.txt")) as fh:
            text = fh.read()
        assert text.startswith("fused-ir repro.fusion/1")
        assert "graph-span" in text
        assert "GrayCoder.encode" in text and "GrayCoder.scale" in text

    @pytest.mark.parametrize("name", CASES)
    def test_plan_files_validate(self, name):
        import json

        with open(_golden_path(name, "plan.json")) as fh:
            data = json.load(fh)
        assert validate_plan_data(data) == []
        assert data["schema"] == "repro.fusion/1"
        assert data["groups"], name
