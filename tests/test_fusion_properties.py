"""Property battery for the fusion pass (docs/FUSION.md).

Seeded random task chains — map compositions of random unary integer
kernels, reduce combinations, and stream pipelines with stateful
stages mixed in — checked for the two invariants that make fusion
safe to ship:

* **Equivalence**: the fused program computes bit-identically what the
  unfused program computes, at every chain length (0 through 9).
* **Legality**: the planner never fuses across a reduce barrier, never
  absorbs a stateful task into a fused span, and the runtime never
  substitutes a fused span that covers a health-demoted task.

Plus plan-artifact hygiene: serialization round-trips, and malformed
plans are rejected with named problems.
"""

import random

import pytest

from repro.apps import compile_app
from repro.compiler import CompileOptions, CompilerSession
from repro.errors import ConfigurationError
from repro.ir.fusion import (
    FusionOptions,
    FusionPlan,
    validate_plan_data,
)
from repro.obs import Tracer
from repro.runtime import (
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
)
from repro.values import KIND_INT, ValueArray

AUTO = CompileOptions(fusion=FusionOptions(mode="auto"))

# Unary integer kernel bodies the generator draws from. All total and
# overflow-free in the simulated integer semantics.
_BODIES = [
    "return x * {a} + {b};",
    "return x ^ (x >> {s});",
    "return (x + {a}) & 1023;",
    "return x * {a} - (x >> {s});",
    "return (x << 1) ^ {b};",
]


def _kernels(rng, count, prefix="f"):
    lines = []
    for i in range(count):
        body = rng.choice(_BODIES).format(
            a=rng.randint(2, 9), b=rng.randint(1, 99), s=rng.randint(1, 5)
        )
        lines.append(
            f"    local static int {prefix}{i}(int x) {{ {body} }}"
        )
    return "\n".join(lines)


def _nested_maps(count, expr, prefix="f"):
    for i in range(count):
        expr = f"Chain @ {prefix}{i}({expr})"
    return expr


def _input(rng, n=128):
    return ValueArray(
        KIND_INT, [rng.randint(0, 1000) for _ in range(n)]
    )


def _compile(source, fused):
    options = AUTO if fused else CompileOptions()
    return CompilerSession(options).compile(source, filename="<chain.lime>")


def _value(compiled, entry, args):
    return repr(
        Runtime(compiled, RuntimeConfig(scheduler="sequential"))
        .run(entry, args)
        .value
    )


@pytest.mark.parametrize("seed", range(10))
def test_random_map_chain_fuses_equal(seed):
    """A chain of `seed` random maps (lengths 0-9): fused and unfused
    agree bit-for-bit, and the planner collapsed the whole chain."""
    length = seed  # one chain length per seed, 0 through 9
    rng = random.Random(0xF00D + seed)
    source = (
        "public class Chain {\n"
        + _kernels(rng, length)
        + "\n    static int[[]] run(int[[]] xs) {\n"
        + f"        return {_nested_maps(length, 'xs')};\n"
        + "    }\n}\n"
    )
    args = [_input(rng)]
    unfused = _compile(source, fused=False)
    fused = _compile(source, fused=True)
    assert _value(unfused, "Chain.run", args) == _value(
        fused, "Chain.run", args
    )
    # Pairwise fixpoint fusion merges an n-chain with n-1 plan groups.
    assert len(fused.fusion_plan.map_groups) == max(length - 1, 0)


@pytest.mark.parametrize("seed", range(6))
def test_reduce_barrier_never_fused_across(seed):
    """Two map chains separated by reduce barriers: values agree, and
    no fusion group ever contains the reduce combiner."""
    rng = random.Random(0xBEEF + seed)
    left, right = rng.randint(0, 4), rng.randint(0, 4)
    source = (
        "public class Chain {\n"
        + _kernels(rng, left, prefix="f")
        + "\n"
        + _kernels(rng, right, prefix="g")
        + "\n    local static int add(int x, int y) { return x + y; }\n"
        + "    static int run(int[[]] xs) {\n"
        + f"        int lhs = Chain ! add({_nested_maps(left, 'xs')});\n"
        + f"        int rhs = Chain ! add({_nested_maps(right, 'xs', 'g')});\n"
        + "        return lhs * 3 + rhs;\n"
        + "    }\n}\n"
    )
    args = [_input(rng)]
    unfused = _compile(source, fused=False)
    fused = _compile(source, fused=True)
    assert _value(unfused, "Chain.run", args) == _value(
        fused, "Chain.run", args
    )
    plan = fused.fusion_plan
    assert len(plan.map_groups) == max(left - 1, 0) + max(right - 1, 0)
    import re

    for group in plan.groups:
        assert not any("add" in task for task in group.task_ids), group
        # Groups never straddle the reduce: one side's kernels only
        # (kernel references look like f3/g1, also inside fused names).
        joined = " ".join(list(group.task_ids) + [group.fused])
        sides = {
            kernel[0] for kernel in re.findall(r"[fg]\d", joined)
        }
        assert len(sides) == 1, group


@pytest.mark.parametrize("seed", range(6))
def test_stateful_stage_splits_graph_groups(seed):
    """A stream pipeline with a stateful stage at a random position:
    values agree, and no fused graph span covers the stateful task."""
    rng = random.Random(0xCAFE + seed)
    stages = rng.randint(3, 6)
    stateful_at = rng.randint(0, stages)  # == stages -> fully pure
    kernels = _kernels(rng, stages)
    tasks = [f"task f{i}" for i in range(stages)]
    if stateful_at < stages:
        tasks.insert(stateful_at, "task acc.add")
    source = (
        "public class Accumulator {\n"
        "    int sum;\n"
        "    local Accumulator(int start) { this.sum = start; }\n"
        "    local int add(int x) { sum += x; return sum; }\n"
        "}\n"
        "public class Chain {\n"
        + kernels
        + "\n    static int[[]] run(int[[]] xs) {\n"
        "        int[] out = new int[xs.length];\n"
        "        var acc = new Accumulator(0);\n"
        "        var t = xs.source(1)\n"
        f"            => ([ {' => '.join(tasks)} ])\n"
        "            => out.<int>sink();\n"
        "        t.finish();\n"
        "        return new int[[]](out);\n"
        "    }\n}\n"
    )
    args = [_input(rng, n=96)]
    unfused = _compile(source, fused=False)
    fused = _compile(source, fused=True)
    assert _value(unfused, "Chain.run", args) == _value(
        fused, "Chain.run", args
    )
    for group in fused.fusion_plan.graph_groups:
        assert not any("acc" in task for task in group.task_ids), group
        assert not any("add" in task for task in group.task_ids), group


def test_health_demoted_span_not_substituted_fused():
    """A health-scoped bytecode pin on one pipeline stage must keep
    the fused whole-span artifact off the device: the demoted task
    rides in every covering span, so the span is rejected and the run
    still computes the cpu answer."""
    from repro.apps import SUITE
    from tests.test_suite_equivalence import SMALL_ARGS

    entry, args = SMALL_ARGS["gray_pipeline"]()
    compiled = compile_app("gray_pipeline", AUTO)
    # Pin the first kernel stage of the fused span (not the source).
    demoted_task = compiled.fusion_plan.graph_groups[0].task_ids[0]
    policy = SubstitutionPolicy()
    policy.demote([demoted_task], health=True)
    tracer = Tracer()
    outcome = Runtime(
        compiled,
        RuntimeConfig(
            scheduler="sequential", tracer=tracer, policy=policy
        ),
    ).run(entry, args)
    counters = tracer.counters.snapshot()
    assert counters.get("fusion.graph.substituted", 0) == 0
    assert counters.get("substitution.rejected[directive]", 0) >= 1
    reference = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    assert repr(outcome.value) == repr(reference.value)


# ----------------------------------------------------------------------
# Plan-artifact hygiene
# ----------------------------------------------------------------------


def test_plan_round_trip_and_allows_span():
    compiled = compile_app("gray_pipeline", AUTO)
    plan = compiled.fusion_plan
    clone = FusionPlan.loads(plan.dumps())
    assert clone.to_dict() == plan.to_dict()
    covered = plan.graph_groups[0].task_ids
    assert plan.allows_span(list(covered))
    assert not plan.allows_span(list(covered)[:1])
    assert not plan.allows_span(list(covered) + ["map:Nope.nope"])


def test_malformed_plans_rejected():
    assert validate_plan_data({"schema": "bogus/9"})
    assert validate_plan_data({"schema": "repro.fusion/1", "groups": 3})
    with pytest.raises(ConfigurationError):
        FusionPlan.loads('{"schema": "bogus/9"}')
    with pytest.raises(ConfigurationError):
        FusionOptions(mode="sideways")
    with pytest.raises(ConfigurationError):
        FusionOptions(mode="plan")  # plan mode requires a path


def test_replaying_plan_against_wrong_program_fails():
    """A plan is pinned to its pre-fusion IR fingerprint: replaying it
    against a different program is a configuration error, not a silent
    misapply."""
    plan = compile_app("gray_pipeline", AUTO).fusion_plan
    with pytest.raises(ConfigurationError):
        from repro.apps import SUITE
        from repro.ir.fusion import apply_fusion

        other = CompilerSession().compile(
            SUITE["photo_pipeline"].source, filename="<photo.lime>"
        )
        apply_fusion(other.module, plan)
