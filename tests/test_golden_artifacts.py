"""Golden-file regression tests for the generated OpenCL C and Verilog.

These freeze the exact artifact text the backends emit for a set of
representative programs. A diff here means codegen changed — if the
change is intentional, regenerate the golden files (see the module
docstring of tests/golden/README)."""

import os

import pytest

from repro.apps import compile_app

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden(name):
    with open(os.path.join(GOLDEN_DIR, name)) as f:
        return f.read()


class TestGoldenOpenCL:
    def test_bitflip_map_kernel(self):
        texts = compile_app("bitflip").artifact_texts("gpu")
        assert texts["gpu:map:Bitflip.flip"] == golden(
            "bitflip_map_flip.cl"
        )

    def test_bitflip_filter_kernel(self):
        compiled = compile_app("bitflip")
        texts = compiled.artifact_texts("gpu")
        (filter_id,) = [
            k for k in texts if k.startswith("gpu:Bitflip.taskFlip")
        ]
        assert texts[filter_id] == golden("bitflip_filter.cl")

    def test_saxpy_map_kernel(self):
        texts = compile_app("saxpy").artifact_texts("gpu")
        assert texts["gpu:map:Saxpy.axpy"] == golden("saxpy_map.cl")

    def test_vector_sum_reduce_kernel(self):
        texts = compile_app("vector_sum").artifact_texts("gpu")
        assert texts["gpu:reduce:VectorOps.add"] == golden(
            "vector_sum_reduce.cl"
        )


class TestGoldenVerilog:
    def test_bitflip_module(self):
        (artifact,) = compile_app("bitflip").store.for_device("fpga")
        assert artifact.text == golden("bitflip_module.v")

    def test_crc8_module(self):
        (artifact,) = compile_app("crc8").store.for_device("fpga")
        assert artifact.text == golden("crc8_module.v")


class TestGoldenContent:
    """Sanity anchors inside the golden text itself (so a regenerated
    golden file cannot silently encode a broken kernel)."""

    def test_map_kernel_shape(self):
        text = golden("bitflip_map_flip.cl")
        assert "__kernel void map_Bitflip_flip" in text
        assert "get_global_id(0)" in text
        assert "(uchar)(1u ^" in text  # bit flip lowered to xor

    def test_verilog_handshake_ports(self):
        text = golden("bitflip_module.v")
        for port in ("inReady", "inWord", "inAccept", "outReady", "outData"):
            assert port in text
