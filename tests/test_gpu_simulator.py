"""Direct unit tests for the SIMT GPU simulator."""

import pytest

from tests.lime_sources import SAXPY
from repro.apps import compile_app
from repro.backends.bytecode import Interpreter
from repro.backends.opencl import compile_gpu
from repro.compiler import compile_program
from repro.devices.gpu import GPUSimulator, GTX580
from repro.errors import DeviceError
from repro.ir import build_ir
from repro.lime import analyze
from repro.values import KIND_FLOAT, KIND_INT, ValueArray


def gpu_for(source):
    compiled = compile_program(source)
    backend_artifacts = {
        a.artifact_id: a for a in compiled.store.for_device("gpu")
    }
    return GPUSimulator(compiled.bytecode_program), backend_artifacts


class TestRunMap:
    def test_simple_map(self):
        gpu, artifacts = gpu_for(SAXPY)
        kernel = artifacts["gpu:map:Saxpy.axpy"].payload
        xs = ValueArray(KIND_FLOAT, [1.0, 2.0])
        ys = ValueArray(KIND_FLOAT, [10.0, 20.0])
        execution = gpu.run_map(kernel, [xs, ys])
        assert list(execution.outputs) == pytest.approx([12.5, 25.0])
        assert execution.timing.work_items == 2

    def test_broadcast_map(self):
        source = """
        class B {
            local static int addBase(int x, int base) { return x + base; }
            static int[[]] m(int[[]] xs, int base) {
                return B @ addBase(xs, base);
            }
        }
        """
        gpu, artifacts = gpu_for(source)
        kernel = artifacts["gpu:map:B.addBase"].payload
        assert kernel.properties["broadcast"] == (False, True)
        xs = ValueArray(KIND_INT, [1, 2, 3])
        execution = gpu.run_map(kernel, [xs, 100])
        assert list(execution.outputs) == [101, 102, 103]

    def test_broadcast_array_counts_bytes_once(self):
        source = """
        class L {
            local static int lookup(int i, int[[]] table) { return table[i]; }
            static int[[]] m(int[[]] idx, int[[]] table) {
                return L @ lookup(idx, table);
            }
        }
        """
        gpu, artifacts = gpu_for(source)
        kernel = artifacts["gpu:map:L.lookup"].payload
        idx = ValueArray(KIND_INT, [0, 1, 0, 1])
        table = ValueArray(KIND_INT, list(range(1000)))
        execution = gpu.run_map(kernel, [idx, table])
        assert list(execution.outputs) == [0, 1, 0, 1]
        # Memory traffic: 4 mapped ints + 1000 broadcast ints + 4 out,
        # not 4 x 1000.
        # memory_s * bandwidth ~= bytes
        spec = GTX580
        modeled_bytes = (
            execution.timing.memory_s * spec.mem_bandwidth_bytes_per_s
        )
        assert modeled_bytes < 8192

    def test_length_mismatch_rejected(self):
        gpu, artifacts = gpu_for(SAXPY)
        kernel = artifacts["gpu:map:Saxpy.axpy"].payload
        with pytest.raises(DeviceError):
            gpu.run_map(
                kernel,
                [
                    ValueArray(KIND_FLOAT, [1.0]),
                    ValueArray(KIND_FLOAT, [1.0, 2.0]),
                ],
            )

    def test_kernel_log_accumulates(self):
        gpu, artifacts = gpu_for(SAXPY)
        kernel = artifacts["gpu:map:Saxpy.axpy"].payload
        xs = ValueArray(KIND_FLOAT, [1.0])
        gpu.run_map(kernel, [xs, xs])
        gpu.run_map(kernel, [xs, xs])
        assert len(gpu.kernel_log) == 2
        assert gpu.total_kernel_time > 0


class TestRunReduce:
    def test_reduce_matches_fold(self):
        gpu, artifacts = gpu_for(SAXPY)
        kernel = artifacts["gpu:reduce:Saxpy.add"].payload
        xs = ValueArray(KIND_FLOAT, [1.0, 2.0, 3.0, 4.0])
        execution = gpu.run_reduce(kernel, xs)
        assert execution.outputs == pytest.approx(10.0)
        assert execution.timing.details["tree_depth"] == 2

    def test_empty_reduce_rejected(self):
        gpu, artifacts = gpu_for(SAXPY)
        kernel = artifacts["gpu:reduce:Saxpy.add"].payload
        with pytest.raises(DeviceError):
            gpu.run_reduce(kernel, ValueArray(KIND_FLOAT, []))


class TestIsolation:
    def test_gpu_cycles_do_not_leak_into_host_interpreter(self):
        """The GPU simulator uses a private interpreter; host cycle
        accounting must be unaffected by kernel execution."""
        compiled = compile_app("saxpy")
        host = Interpreter(compiled.bytecode_program)
        gpu = GPUSimulator(compiled.bytecode_program)
        kernel = compiled.store.for_device("gpu")[0].payload
        before = host.cycles
        xs = ValueArray(KIND_FLOAT, [1.0] * 64)
        gpu.run(kernel, [2.0, xs, xs])  # (a, xs, ys): 'a' is broadcast
        assert host.cycles == before

    def test_unknown_kernel_kind(self):
        compiled = compile_app("saxpy")
        gpu = GPUSimulator(compiled.bytecode_program)
        kernel = compiled.store.for_device("gpu")[0].payload
        import dataclasses

        broken = dataclasses.replace(kernel, kind="wat")
        with pytest.raises(DeviceError):
            gpu.run(broken, [])
