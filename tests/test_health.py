"""Device health subsystem: circuit breakers, shadow probes, and
probationary re-promotion (docs/RESILIENCE.md).

Covers the breaker state machine and registry in isolation, the
health-scoped (revocable) substitution directives, burst/corrupt fault
specs, and the end-to-end acceptance property: under a seeded
transient-fault-window plan a GPU span is demoted, probed, and
re-promoted within one run, with output bit-identical to the fault-free
reference on both schedulers and a transition sequence that is
deterministic in simulated time.
"""

import json
import threading

import pytest

from repro.apps import SUITE
from repro.backends.common import BYTECODE
from repro.compiler import CompileOptions, compile_program
from repro.errors import (
    ConfigurationError,
    DeviceError,
    RetryExhaustedError,
)
from repro.obs import Tracer
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HealthPolicy,
    HealthRegistry,
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
    Supervisor,
    render_health_report,
    validate_health_report,
)
from repro.runtime.graph import Pipeline
from repro.runtime.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    RUN_BYTECODE,
    RUN_DEVICE,
    RUN_PROBE,
    DeviceHealth,
)
from repro.runtime.scheduler import SequentialScheduler, ThreadedScheduler
from repro.runtime.tasks import (
    DeviceTask,
    ExecutionContext,
    SinkTask,
    SourceTask,
)
from repro.runtime.timing import TimingLedger
from repro.values import KIND_INT, MutableArray, ValueArray


# ----------------------------------------------------------------------
# HealthPolicy
# ----------------------------------------------------------------------


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HealthPolicy(window=0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(window_s=0.0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(cooldown_s=-1.0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(probe_batches=0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(quarantine_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            HealthPolicy(max_cooldown_s=0.0)

    def test_recovery_disabled_by_default(self):
        policy = HealthPolicy()
        assert not policy.recovery_enabled
        assert policy.cooldown_for_trip(1) is None

    def test_quarantine_escalates_and_caps(self):
        policy = HealthPolicy(
            cooldown_s=1e-6, quarantine_multiplier=2.0, max_cooldown_s=3e-6
        )
        assert policy.recovery_enabled
        assert policy.cooldown_for_trip(1) == pytest.approx(1e-6)
        assert policy.cooldown_for_trip(2) == pytest.approx(2e-6)
        assert policy.cooldown_for_trip(3) == pytest.approx(3e-6)  # capped
        assert policy.cooldown_for_trip(9) == pytest.approx(3e-6)


# ----------------------------------------------------------------------
# DeviceHealth state machine
# ----------------------------------------------------------------------


def make_breaker(**overrides) -> DeviceHealth:
    defaults = dict(
        cooldown_s=1e-6, probe_batches=2, failure_threshold=2, window=4
    )
    defaults.update(overrides)
    return DeviceHealth("gpu", "art:span", HealthPolicy(**defaults))


class TestDeviceHealth:
    def test_starts_closed_and_runs_device(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.decide() == (RUN_DEVICE, None)

    def test_opens_at_failure_threshold(self):
        breaker = make_breaker(failure_threshold=2)
        assert breaker.record_failure(1e-7, "DeviceError") is None
        assert breaker.state == CLOSED
        transition = breaker.record_failure(1e-7, "DeviceError")
        assert transition is not None
        assert (transition.from_state, transition.to_state) == (CLOSED, OPEN)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert breaker.decide()[0] == RUN_BYTECODE

    def test_successes_slide_failures_out_of_window(self):
        breaker = make_breaker(failure_threshold=2, window=2)
        breaker.record_failure(1e-7)
        breaker.record_success(1e-7)
        breaker.record_success(1e-7)
        # The failure fell out of the 2-outcome window.
        assert breaker.record_failure(1e-7) is None
        assert breaker.state == CLOSED

    def test_window_s_horizon_prunes_old_outcomes(self):
        breaker = make_breaker(
            failure_threshold=2, window=100, window_s=1e-6
        )
        breaker.record_failure(1e-7)
        breaker.record_success(5e-6)  # pushes the clock past the horizon
        assert breaker.record_failure(1e-7) is None
        assert breaker.state == CLOSED

    def test_cooldown_expiry_goes_half_open_then_probes(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=1e-6)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        action, transition = breaker.decide()
        assert action == RUN_BYTECODE and transition is None
        breaker.record_fallback(2e-6)  # clock passes the quarantine
        action, transition = breaker.decide()
        assert action == RUN_PROBE
        assert (transition.from_state, transition.to_state) == (
            OPEN,
            HALF_OPEN,
        )
        # HALF_OPEN keeps probing until the verdict is in.
        assert breaker.decide() == (RUN_PROBE, None)

    def test_clean_probes_close_and_repromote(self):
        breaker = make_breaker(
            failure_threshold=1, cooldown_s=1e-6, probe_batches=2
        )
        breaker.record_failure(0.0)
        breaker.record_fallback(2e-6)
        breaker.decide()
        assert breaker.record_probe(True, 1e-7) is None
        transition = breaker.record_probe(True, 1e-7)
        assert (transition.from_state, transition.to_state) == (
            HALF_OPEN,
            CLOSED,
        )
        assert breaker.state == CLOSED
        assert breaker.repromotions == 1
        assert breaker.decide()[0] == RUN_DEVICE

    def test_failed_probe_reopens_with_escalated_quarantine(self):
        breaker = make_breaker(
            failure_threshold=1,
            cooldown_s=1e-6,
            quarantine_multiplier=2.0,
            max_cooldown_s=1.0,
        )
        breaker.record_failure(0.0)
        breaker.record_fallback(2e-6)
        breaker.decide()
        transition = breaker.record_probe(False, 1e-7, "DeviceError")
        assert (transition.from_state, transition.to_state) == (
            HALF_OPEN,
            OPEN,
        )
        assert breaker.trips == 2
        assert transition.cooldown_s == pytest.approx(2e-6)
        # Not yet cooled: the first quarantine's worth is not enough.
        breaker.record_fallback(1e-6)
        assert breaker.decide()[0] == RUN_BYTECODE
        breaker.record_fallback(1.5e-6)
        assert breaker.decide()[0] == RUN_PROBE

    def test_permanent_demotion_without_cooldown(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=None)
        breaker.record_failure(0.0)
        breaker.record_fallback(10.0)  # any amount of traffic
        assert breaker.decide() == (RUN_BYTECODE, None)
        assert breaker.state == OPEN

    def test_transitions_are_monotonic_in_simulated_time(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=1e-6)
        breaker.record_failure(1e-7)
        breaker.record_fallback(2e-6)
        breaker.decide()
        breaker.record_probe(False, 1e-7)
        stamps = [t.at_s for t in breaker.transitions]
        assert stamps == sorted(stamps)
        assert len(breaker.transitions) == 3


# ----------------------------------------------------------------------
# HealthRegistry
# ----------------------------------------------------------------------


class TestHealthRegistry:
    def test_breaker_identity_and_state(self):
        registry = HealthRegistry(HealthPolicy(cooldown_s=1e-6))
        breaker = registry.breaker("gpu", "a", covered_task_ids=["t:f0"])
        assert registry.breaker("gpu", "a") is breaker
        assert registry.breaker("fpga", "a") is not breaker
        assert registry.state_of("gpu", "a") == CLOSED
        assert registry.state_of("gpu", "missing") is None
        assert breaker.covered_task_ids == ["t:f0"]

    def test_outcomes_counters_and_gauge(self):
        tracer = Tracer()
        registry = HealthRegistry(
            HealthPolicy(cooldown_s=1e-6, failure_threshold=1),
            tracer=tracer,
        )
        assert registry.decide("gpu", "a", ["t:f0"]) == RUN_DEVICE
        registry.on_success("gpu", "a", 1e-7)
        registry.on_failure("gpu", "a", 1e-7, error="DeviceError")
        assert registry.state_of("gpu", "a") == OPEN
        registry.on_fallback("gpu", "a", 2e-6)
        assert registry.decide("gpu", "a") == RUN_PROBE
        registry.on_probe("gpu", "a", True, 1e-7)
        counters = tracer.counters.snapshot()
        assert counters["health.success"] == 1
        assert counters["health.failure[gpu]"] == 1
        assert counters["health.fallback[gpu]"] == 1
        assert counters["health.probe.clean"] == 1
        assert counters["health.transition[open]"] == 1
        assert counters["health.transition[half_open]"] == 1
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["breaker.state[gpu:a]"]["value"] == 2  # HALF_OPEN
        assert len(tracer.find("breaker.transition")) == 2

    def test_listener_sees_every_transition(self):
        seen = []
        registry = HealthRegistry(
            HealthPolicy(cooldown_s=1e-6, failure_threshold=1,
                         probe_batches=1),
            listener=lambda record, t: seen.append(
                (t.from_state, t.to_state)
            ),
        )
        registry.on_failure("gpu", "a", 0.0, covered_task_ids=["t:f0"])
        registry.on_fallback("gpu", "a", 2e-6)
        registry.decide("gpu", "a")
        registry.on_probe("gpu", "a", True, 1e-7)
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_report_validates_and_renders(self):
        registry = HealthRegistry(
            HealthPolicy(cooldown_s=1e-6, failure_threshold=1)
        )
        registry.on_failure("gpu", "a", 0.0, covered_task_ids=["t:f0"])
        report = registry.to_report(
            app="x", entry="X.main", scheduler="sequential"
        )
        assert validate_health_report(report) == []
        assert report["schema"] == "repro.health/1"
        assert report["totals"]["open"] == 1
        text = render_health_report(report)
        assert "gpu:a" in text and "OPEN" in text
        # Round-trips through JSON untouched.
        assert validate_health_report(json.loads(json.dumps(report))) == []

    def test_validation_catches_broken_reports(self):
        assert validate_health_report([]) != []
        assert validate_health_report({"schema": "nope"}) != []
        registry = HealthRegistry(
            HealthPolicy(cooldown_s=1e-6, failure_threshold=1)
        )
        registry.on_failure("gpu", "a", 0.0)
        report = registry.to_report()
        bad = json.loads(json.dumps(report))
        bad["breakers"][0]["state"] = "exploded"
        assert any("unknown state" in p for p in validate_health_report(bad))
        bad = json.loads(json.dumps(report))
        bad["totals"]["breakers"] = 99
        assert any("totals" in p for p in validate_health_report(bad))
        bad = json.loads(json.dumps(report))
        bad["breakers"][0]["transitions"].append(
            dict(bad["breakers"][0]["transitions"][0], at_s=-1.0)
        )
        assert any(
            "backwards" in p for p in validate_health_report(bad)
        )


# ----------------------------------------------------------------------
# Health-scoped substitution directives
# ----------------------------------------------------------------------


class TestHealthDirectives:
    def test_health_demote_is_revocable(self):
        policy = SubstitutionPolicy()
        policy.demote(["t:f0", "t:f1"], health=True)
        assert policy.directives == {"t:f0": BYTECODE, "t:f1": BYTECODE}
        lifted = policy.promote(["t:f0", "t:f1"])
        assert sorted(lifted) == ["t:f0", "t:f1"]
        assert policy.directives == {}

    def test_user_directives_survive_promote(self):
        policy = SubstitutionPolicy(directives={"t:f0": BYTECODE})
        policy.demote(["t:f0", "t:f1"], health=True)
        assert policy.promote(["t:f0", "t:f1"]) == ["t:f1"]
        # The user's pin was never health-scoped, so it stays.
        assert policy.directives == {"t:f0": BYTECODE}

    def test_plain_demote_is_not_revocable(self):
        policy = SubstitutionPolicy()
        policy.demote(["t:f0"])
        assert policy.promote(["t:f0"]) == []
        assert policy.directives == {"t:f0": BYTECODE}


# ----------------------------------------------------------------------
# Burst windows and corrupt faults
# ----------------------------------------------------------------------


class TestBurstAndCorruptFaults:
    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(from_call=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(until_call=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(from_call=5, until_call=2)

    def test_burst_window_fires_inclusively(self):
        plan = FaultPlan(
            [FaultSpec(site="device", from_call=2, until_call=3)], seed=1
        )
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(5):
            try:
                injector.check("device", ["x"], device="gpu", task_id="x")
                outcomes.append("ok")
            except DeviceError:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "fault", "ok", "ok"]

    def test_window_round_trips_through_plan_dict(self):
        plan = FaultPlan(
            [FaultSpec(site="device", from_call=2, until_call=3)], seed=9
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.specs[0].from_call == 2
        assert clone.specs[0].until_call == 3

    def test_corrupt_perturbs_outputs_without_raising(self):
        plan = FaultPlan(
            [FaultSpec(site="device", error="corrupt", on_calls=(2,))],
            seed=1,
        )
        injector = FaultInjector(plan)
        # check() never fires corrupt specs.
        injector.check("device", ["x"], device="gpu", task_id="x")
        first = injector.transform_outputs("device", ["x"], [10, 20])
        second = injector.transform_outputs("device", ["x"], [10, 20])
        assert first == [10, 20]
        assert second != [10, 20]
        assert injector.fired() == 1


# ----------------------------------------------------------------------
# Supervisor satellites
# ----------------------------------------------------------------------


class TestSupervisorSatellites:
    def test_retry_recovered_signal(self):
        tracer = Tracer()
        supervisor = Supervisor(RetryPolicy(max_attempts=3), tracer=tracer)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeviceError("transient")
            return "ok"

        assert supervisor.run(flaky, task_id="t", device="gpu") == "ok"
        counters = tracer.counters.snapshot()
        assert counters["retry.recovered"] == 1
        assert counters["retry.recovered[gpu]"] == 1
        (span,) = tracer.find("retry.recovered")
        assert span.attributes["task_id"] == "t"
        assert span.attributes["attempts"] == 3
        assert span.attributes["backoff_s"] > 0.0

    def test_first_try_success_is_not_recovered(self):
        tracer = Tracer()
        supervisor = Supervisor(RetryPolicy(max_attempts=3), tracer=tracer)
        supervisor.run(lambda: "ok", task_id="t", device="gpu")
        assert tracer.counters.get("retry.recovered") == 0

    def test_demotion_record_carries_backoff(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=3))
        supervisor.run(
            lambda: (_ for _ in ()).throw(DeviceError("dead")),
            task_id="t",
            device="gpu",
            fallback=lambda: "cpu",
        )
        (record,) = supervisor.demotions
        assert record.backoff_s > 0.0
        assert record.backoff_s == pytest.approx(
            supervisor.total_backoff_s
        )

    def test_threaded_backoff_deterministic(self):
        """Satellite: concurrent tasks must not perturb the backoff
        sequence — the total is bit-identical across runs regardless
        of thread interleaving (per-task RNG streams + atomic
        draw-and-accumulate)."""

        def run_once():
            supervisor = Supervisor(RetryPolicy(max_attempts=4, seed=3))
            barrier = threading.Barrier(4)

            def worker(task_id):
                barrier.wait()
                supervisor.run(
                    lambda: (_ for _ in ()).throw(DeviceError("x")),
                    task_id=task_id,
                    device="gpu",
                    fallback=lambda: None,
                )

            threads = [
                threading.Thread(target=worker, args=(f"t:{i}",))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return supervisor.total_backoff_s

        totals = {run_once() for _ in range(5)}
        assert len(totals) == 1
        assert totals.pop() > 0.0

    def test_per_task_streams_differ(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=2, seed=3))
        a = supervisor._draw_backoff("t:a", 1)
        b = supervisor._draw_backoff("t:b", 1)
        assert a != b


# ----------------------------------------------------------------------
# RetryExhaustedError end-to-end (no fallback) through both schedulers
# ----------------------------------------------------------------------


class _StubEngine:
    config = None

    def __init__(self):
        self.ledger = TimingLedger()

    def metered_call(self, method, args):
        return args[0], 10


def _exhausting_pipeline(tracer):
    """source -> DeviceTask (no bytecode fallback) -> sink."""
    supervisor = Supervisor(RetryPolicy(max_attempts=2), tracer=tracer)

    def executor(items):
        def attempt():
            raise DeviceError("dead device")

        return supervisor.run(
            attempt, task_id="gpu:dead", device="gpu", fallback=None
        )

    source = SourceTask(ValueArray(KIND_INT, [1, 2, 3]), 1, "t:src")
    device = DeviceTask(
        artifact_id="gpu:dead",
        device="gpu",
        covered_task_ids=["t:f0"],
        executor=executor,
        batch_size=2,
    )
    sink = SinkTask(MutableArray(KIND_INT, []), "t:sink")
    return Pipeline([source, device, sink])


class TestRetryExhaustedEndToEnd:
    @pytest.mark.parametrize(
        "scheduler",
        [SequentialScheduler(), ThreadedScheduler()],
        ids=["sequential", "threaded"],
    )
    def test_exhaustion_surfaces_cleanly(self, scheduler):
        tracer = Tracer()
        engine = _StubEngine()
        ctx = ExecutionContext(engine, engine.ledger.new_graph_run("g"))
        pipeline = _exhausting_pipeline(tracer)
        with pytest.raises(RetryExhaustedError) as err:
            scheduler.run_to_completion(pipeline, ctx)
        assert err.value.task_id == "gpu:dead"
        assert err.value.device == "gpu"
        assert err.value.attempts == 2
        assert isinstance(err.value.__cause__, DeviceError)
        # The pipeline recorded the failure: join() re-raises the same
        # error instead of hanging or claiming a never-started graph.
        assert pipeline.failed
        with pytest.raises(RetryExhaustedError):
            scheduler.join(pipeline)


# ----------------------------------------------------------------------
# End-to-end: demote -> probe -> re-promote within one run
# ----------------------------------------------------------------------


TRANSIENT_PLAN = FaultPlan(
    [FaultSpec(site="device", error="device", target="*", until_call=1)],
    seed=7,
)


def _recovery_run(scheduler, plan=TRANSIENT_PLAN, health=None):
    spec = SUITE["gray_pipeline"]
    entry, values = spec.default_args()
    tracer = Tracer()
    compiled = compile_program(
        spec.source,
        filename="<gray_pipeline.lime>",
        options=CompileOptions(tracer=tracer),
    )
    config = RuntimeConfig(
        scheduler=scheduler,
        tracer=tracer,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=1),
        health=health
        or HealthPolicy(
            cooldown_s=1e-6, probe_batches=2, failure_threshold=1
        ),
        batch_size=16,
    )
    runtime = Runtime(compiled, config)
    outcome = runtime.run(entry, list(values))
    reference = Runtime(
        compiled,
        RuntimeConfig(
            policy=SubstitutionPolicy(use_accelerators=False),
            scheduler=scheduler,
        ),
    ).run(entry, list(values))
    return runtime, outcome, reference, tracer


def _transition_sequence(runtime):
    return [
        (t.key, t.from_state, t.to_state, t.at_s, t.reason)
        for breaker in runtime.health.breakers()
        for t in breaker.transitions
    ]


class TestRecoveryEndToEnd:
    @pytest.mark.parametrize(
        "scheduler", ["sequential", "threaded"]
    )
    def test_demote_probe_repromote_within_one_run(self, scheduler):
        runtime, outcome, reference, tracer = _recovery_run(scheduler)
        assert outcome.output == reference.output
        assert outcome.value == reference.value
        (breaker,) = runtime.health.breakers()
        states = [
            (t.from_state, t.to_state) for t in breaker.transitions
        ]
        assert states == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert breaker.state == CLOSED
        assert breaker.repromotions == 1
        assert breaker.probes == 2
        assert breaker.successes > 0  # device traffic after re-promotion
        counters = tracer.counters.snapshot()
        assert counters["health.repromotion[gpu]"] == 1
        assert counters["demotion.taken"] == 1
        # The health pin was lifted: no bytecode directives remain.
        assert runtime.policy.directives == {}

    def test_transitions_deterministic_across_runs_and_schedulers(self):
        first = _transition_sequence(_recovery_run("sequential")[0])
        second = _transition_sequence(_recovery_run("sequential")[0])
        threaded = _transition_sequence(_recovery_run("threaded")[0])
        assert first == second
        assert first == threaded
        assert len(first) == 3

    def test_breaker_spans_reach_chrome_trace(self, tmp_path):
        from repro.obs.export import validate_trace_events, write_chrome_trace

        runtime, _, _, tracer = _recovery_run("sequential")
        assert len(tracer.find("breaker.transition")) == 3
        assert len(tracer.find("probe.shadow")) == 2
        probe = tracer.find("probe.shadow")[0]
        assert probe.attributes["ok"] is True
        assert probe.attributes["device_s"] > 0.0
        payload = write_chrome_trace(
            tracer, str(tmp_path / "health.json"), process_name="t"
        )
        assert validate_trace_events(payload) == []
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "breaker.transition" in names
        assert "probe.shadow" in names
        # Stage spans carry the breaker verdict for the span.
        stage_states = [
            span.attributes.get("breaker_state")
            for span in tracer.find("run.graph.stage")
            if span.attributes.get("task_id", "").startswith("gpu:")
        ]
        assert stage_states == [CLOSED]

    def test_wrong_answer_device_fails_probe(self):
        """A corrupt (silently wrong) device is caught by the shadow
        probe's element-wise comparison and re-quarantined; bytecode
        stays authoritative so output is still bit-identical."""
        plan = FaultPlan(
            [
                FaultSpec(
                    site="device", error="device", target="*", until_call=1
                ),
                # First *completed* device execution is the first probe:
                # it returns wrong answers instead of crashing.
                FaultSpec(
                    site="device", error="corrupt", target="*",
                    on_calls=(1,),
                ),
            ],
            seed=7,
        )
        runtime, outcome, reference, _ = _recovery_run(
            "sequential", plan=plan
        )
        assert outcome.output == reference.output
        assert outcome.value == reference.value
        (breaker,) = runtime.health.breakers()
        assert breaker.probe_failures == 1
        assert breaker.trips >= 2
        reopen = [
            t
            for t in breaker.transitions
            if t.from_state == HALF_OPEN and t.to_state == OPEN
        ]
        assert reopen and reopen[0].reason == "mismatch"

    def test_default_policy_keeps_demotion_permanent(self):
        runtime, outcome, reference, _ = _recovery_run(
            "sequential", health=HealthPolicy()
        )
        assert outcome.output == reference.output
        (breaker,) = runtime.health.breakers()
        assert breaker.state == OPEN
        assert breaker.probes == 0
        assert breaker.repromotions == 0
        # Permanent pin: the span's tasks stay directed to bytecode.
        assert BYTECODE in runtime.policy.directives.values()

    def test_health_report_from_live_run(self):
        runtime, _, _, _ = _recovery_run("sequential")
        report = runtime.health.to_report(
            app="gray_pipeline", entry="GrayCoder.pipeline",
            scheduler="sequential",
        )
        assert validate_health_report(report) == []
        assert report["totals"]["repromotions"] == 1
        assert report["totals"]["trips"] == 1
