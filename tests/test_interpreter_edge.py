"""Edge-case semantics in the bytecode interpreter: casts, enums,
strings, longs, nesting, and value-class behaviours."""

import pytest

from repro.backends.bytecode import Interpreter, compile_module
from repro.errors import DeviceError
from repro.ir import build_ir
from repro.lime import analyze
from repro.values import Bit, EnumValue


def run(source, method, args):
    module = build_ir(analyze(source))
    return Interpreter(compile_module(module)).call(method, args)


class TestCasts:
    @pytest.mark.parametrize(
        "src_type, dst_type, value, expected",
        [
            ("double", "int", 3.99, 3),
            ("double", "int", -3.99, -3),
            ("double", "float", 0.1, pytest.approx(0.1, rel=1e-6)),
            ("int", "long", 5, 5),
            ("long", "int", (1 << 32) + 7, 7),
            ("int", "double", 3, 3.0),
        ],
    )
    def test_numeric_casts(self, src_type, dst_type, value, expected):
        source = (
            f"class T {{ static {dst_type} m({src_type} x) "
            f"{{ return ({dst_type}) x; }} }}"
        )
        assert run(source, "T.m", [value]) == expected

    def test_bit_to_int(self):
        source = "class T { static int m(bit b) { return (int) b; } }"
        assert run(source, "T.m", [Bit.ONE]) == 1
        assert run(source, "T.m", [Bit.ZERO]) == 0

    def test_int_to_bit(self):
        source = "class T { static bit m(int x) { return (bit) x; } }"
        assert run(source, "T.m", [1]) is Bit.ONE
        assert run(source, "T.m", [0]) is Bit.ZERO


class TestLongs:
    def test_long_wraps_at_64_bits(self):
        source = (
            "class T { static long m(long a) { return a + 1L; } }"
        )
        assert run(source, "T.m", [2**63 - 1]) == -(2**63)

    def test_long_shift(self):
        source = "class T { static long m(long a) { return a << 40; } }"
        assert run(source, "T.m", [1]) == 1 << 40

    def test_long_division(self):
        source = "class T { static long m(long a, long b) { return a / b; } }"
        assert run(source, "T.m", [-(10**12), 7]) == -(10**12 // 7)


class TestUserEnums:
    SOURCE = """
    public value enum color {
        red, green, blue;
        public color ~ this {
            return this == red ? blue : red;
        }
        public boolean isRed() {
            return this == red;
        }
    }
    class T {
        static color flip(color c) { return ~c; }
        static boolean check(color c) { return c.isRed(); }
        static color pick() { return color.green; }
    }
    """

    def test_enum_constant(self):
        value = run(self.SOURCE, "T.pick", [])
        assert isinstance(value, EnumValue)
        assert value.ordinal == 1

    def test_user_operator_method(self):
        red = EnumValue("color", 0, 3)
        blue = EnumValue("color", 2, 3)
        assert run(self.SOURCE, "T.flip", [red]) == blue
        assert run(self.SOURCE, "T.flip", [blue]) == red

    def test_instance_method(self):
        red = EnumValue("color", 0, 3)
        green = EnumValue("color", 1, 3)
        assert run(self.SOURCE, "T.check", [red]) is True
        assert run(self.SOURCE, "T.check", [green]) is False


class TestStrings:
    def test_concat_numbers(self):
        source = (
            'class T { static void m() { println("v=" + 1 + "," + 2.5); } }'
        )
        module = build_ir(analyze(source))
        interp = Interpreter(compile_module(module))
        interp.call("T.m", [])
        assert interp.output == "v=1,2.5\n"

    def test_concat_booleans_java_style(self):
        source = 'class T { static void m(boolean b) { println("" + b); } }'
        module = build_ir(analyze(source))
        interp = Interpreter(compile_module(module))
        interp.call("T.m", [True])
        assert interp.output == "true\n"


class TestControlFlowDepth:
    def test_deeply_nested_loops(self):
        source = """
        class T {
            static int m(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        for (int k = 0; k < n; k++) {
                            if ((i + j + k) % 2 == 0) { total += 1; }
                        }
                    }
                }
                return total;
            }
        }
        """
        n = 6
        expected = sum(
            1
            for i in range(n)
            for j in range(n)
            for k in range(n)
            if (i + j + k) % 2 == 0
        )
        assert run(source, "T.m", [n]) == expected

    def test_break_out_of_inner_loop_only(self):
        source = """
        class T {
            static int m() {
                int total = 0;
                for (int i = 0; i < 4; i++) {
                    for (int j = 0; j < 10; j++) {
                        if (j == 2) { break; }
                        total += 1;
                    }
                }
                return total;
            }
        }
        """
        assert run(source, "T.m", []) == 8

    def test_while_with_compound_condition(self):
        source = """
        class T {
            static int m(int n) {
                int i = 0;
                int s = 0;
                while (i < n && s < 50) {
                    s += i;
                    i++;
                }
                return s;
            }
        }
        """
        assert run(source, "T.m", [100]) == 55  # 0+..+10


class TestValueClasses:
    def test_nested_value_objects(self):
        source = """
        value class Point {
            float x; float y;
            Point(float x0, float y0) { this.x = x0; this.y = y0; }
        }
        value class Segment {
            Point a; Point b;
            Segment(Point p, Point q) { this.a = p; this.b = q; }
            float dx() { return b.x - a.x; }
        }
        class T {
            static float m() {
                Segment s = new Segment(
                    new Point(1.0f, 0.0f), new Point(4.0f, 0.0f));
                return s.dx();
            }
        }
        """
        assert run(source, "T.m", []) == pytest.approx(3.0)

    def test_frozen_value_instance_rejects_mutation(self):
        # Mutation through the interpreter is impossible by typing;
        # verify the runtime guard fires on the frozen struct anyway.
        from repro.errors import ValueSemanticsError
        from repro.values.structs import StructValue

        struct = StructValue("V", ["x"], True)
        struct.set("x", 1)
        struct.freeze()
        with pytest.raises(ValueSemanticsError):
            struct.set("x", 2)

    def test_mutable_class_instance(self):
        source = """
        public class Counter {
            int n;
            local Counter(int start) { this.n = start; }
            local int bump() { n += 1; return n; }
        }
        class T {
            static int m() {
                Counter c = new Counter(10);
                c.bump();
                c.bump();
                return c.bump();
            }
        }
        """
        assert run(source, "T.m", []) == 13


class TestErrorsAtRuntime:
    def test_unknown_function(self):
        module = build_ir(analyze("class T { }"))
        interp = Interpreter(compile_module(module))
        with pytest.raises(DeviceError):
            interp.call("T.missing", [])

    def test_wrong_arity(self):
        source = "class T { static int m(int x) { return x; } }"
        module = build_ir(analyze(source))
        interp = Interpreter(compile_module(module))
        with pytest.raises(DeviceError):
            interp.call("T.m", [1, 2])

    def test_modulo_negative_java_semantics(self):
        source = "class T { static int m(int a, int b) { return a % b; } }"
        assert run(source, "T.m", [-7, 3]) == -1
        assert run(source, "T.m", [7, -3]) == 1
