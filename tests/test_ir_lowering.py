"""Tests for AST -> IR lowering, shape discovery, and optimizations."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY
from repro.errors import TaskGraphError
from repro.ir import build_ir, lower, optimize
from repro.ir import nodes as ir
from repro.lime import analyze
from repro.lime import types as ty


def module_for(source, optimized=True):
    return build_ir(analyze(source), run_optimizations=optimized)


class TestFigure1Lowering:
    def test_functions_present(self):
        module = module_for(FIGURE1)
        assert "Bitflip.flip" in module.functions
        assert "Bitflip.mapFlip" in module.functions
        assert "Bitflip.taskFlip" in module.functions

    def test_flip_body_is_intrinsic_invert(self):
        module = module_for(FIGURE1)
        flip = module.functions["Bitflip.flip"]
        assert len(flip.body) == 1
        ret = flip.body[0]
        assert isinstance(ret, ir.SReturn)
        assert isinstance(ret.value, ir.EIntrinsic)
        assert ret.value.name == "bit.~"

    def test_mapflip_lowers_to_emap(self):
        module = module_for(FIGURE1)
        map_flip = module.functions["Bitflip.mapFlip"]
        let = map_flip.body[0]
        assert isinstance(let, ir.SLet)
        assert isinstance(let.init, ir.EMap)
        assert let.init.method == "Bitflip.flip"

    def test_taskflip_graph_discovered(self):
        module = module_for(FIGURE1)
        assert len(module.task_graphs) == 1
        graph = module.task_graphs[0]
        assert graph.owner_function == "Bitflip.taskFlip"
        assert [s.kind for s in graph.stages] == ["source", "filter", "sink"]
        assert graph.is_closed

    def test_filter_stage_is_relocatable(self):
        module = module_for(FIGURE1)
        graph = module.task_graphs[0]
        filter_stage = graph.stages[1]
        assert filter_stage.relocatable
        assert filter_stage.method == "Bitflip.flip"

    def test_relocation_regions(self):
        module = module_for(FIGURE1)
        graph = module.task_graphs[0]
        assert graph.relocation_regions() == [(1, 1)]

    def test_task_ids_unique_and_stable(self):
        module = module_for(FIGURE1)
        ids = [s.task_id for s in module.task_graphs[0].stages]
        assert len(set(ids)) == 3
        module2 = module_for(FIGURE1)
        ids2 = [s.task_id for s in module2.task_graphs[0].stages]
        assert ids == ids2

    def test_graph_start_annotated(self):
        module = module_for(FIGURE1)
        task_flip = module.functions["Bitflip.taskFlip"]
        starts = [
            s
            for s in ir.walk_stmts(task_flip.body)
            if isinstance(s, ir.SGraphStart)
        ]
        assert len(starts) == 1
        assert starts[0].blocking  # finish()
        assert starts[0].graph_id == module.task_graphs[0].graph_id

    def test_describe(self):
        module = module_for(FIGURE1)
        assert module.task_graphs[0].describe() == "source(1) => [flip] => sink"


class TestShapeErrors:
    def test_reloc_under_control_flow_rejected(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs, bit[] out, boolean c) {
                if (c) {
                    var t = xs.source(1) => ([ task f ]) => out.sink();
                    t.finish();
                }
            }
        }
        """
        with pytest.raises(TaskGraphError):
            module_for(source)

    def test_dynamic_graph_without_reloc_allowed(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs, bit[] out, boolean c) {
                if (c) {
                    var t = xs.source(1) => task f => out.sink();
                    t.finish();
                }
            }
        }
        """
        module = module_for(source)
        assert module.task_graphs == []

    def test_multiple_graphs_in_one_function(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs, bit[] a, bit[] b) {
                var t1 = xs.source(1) => ([ task f ]) => a.sink();
                t1.finish();
                var t2 = xs.source(1) => ([ task f ]) => b.sink();
                t2.finish();
            }
        }
        """
        module = module_for(source)
        assert len(module.task_graphs) == 2
        assert module.task_graphs[0].graph_id != module.task_graphs[1].graph_id


class TestLoweringDetails:
    def test_compound_assignment_expanded(self):
        source = "class T { static int m(int x) { x += 5; return x; } }"
        module = module_for(source, optimized=False)
        body = module.functions["T.m"].body
        assign = body[0]
        assert isinstance(assign, ir.SAssignLocal)
        assert isinstance(assign.value, ir.EBinary)
        assert assign.value.op == "+"

    def test_canonical_for(self):
        source = (
            "class T { static int m(int n) { int s = 0; "
            "for (int i = 0; i < n; i++) { s += i; } return s; } }"
        )
        module = module_for(source)
        body = module.functions["T.m"].body
        loop = body[1]
        assert isinstance(loop, ir.SFor)
        assert loop.var == "i"

    def test_noncanonical_for_becomes_while(self):
        source = (
            "class T { static int m(int n) { int s = 0; "
            "for (int i = n; i > 0; i -= 1) { s += i; } return s; } }"
        )
        module = module_for(source)
        body = module.functions["T.m"].body
        assert any(isinstance(s, ir.SWhile) for s in body)

    def test_constructor_synthesized(self):
        source = """
        value class V {
            int x;
            V(int x0) { this.x = x0; }
        }
        """
        module = module_for(source)
        init = module.functions["V.<init>"]
        assert init.is_constructor
        assert [p.name for p in init.params] == ["this", "x0"]
        assert isinstance(init.body[0], ir.SFieldStore)

    def test_instance_method_gets_this_param(self):
        source = """
        value class V {
            int x;
            V(int x0) { this.x = x0; }
            int get() { return x; }
        }
        """
        module = module_for(source)
        get = module.functions["V.get"]
        assert get.params[0].name == "this"
        ret = get.body[0]
        assert isinstance(ret.value, ir.EFieldLoad)

    def test_saxpy_reduce_lowering(self):
        module = module_for(SAXPY)
        total = module.functions["Saxpy.total"]
        ret = total.body[0]
        assert isinstance(ret.value, ir.EReduce)
        assert ret.value.method == "Saxpy.add"


class TestOptimizations:
    def opt_body(self, body_src, params="", ret="int"):
        source = f"class T {{ static {ret} m({params}) {{ {body_src} }} }}"
        module = module_for(source)
        return module.functions["T.m"].body

    def test_constant_folding(self):
        body = self.opt_body("return 2 + 3 * 4;")
        assert isinstance(body[0].value, ir.EConst)
        assert body[0].value.value == 14

    def test_identity_add_zero(self):
        body = self.opt_body("return x + 0;", params="int x")
        assert isinstance(body[0].value, ir.ELocal)

    def test_identity_mul_one(self):
        body = self.opt_body("return x * 1;", params="int x")
        assert isinstance(body[0].value, ir.ELocal)

    def test_mul_zero_folds_when_pure(self):
        body = self.opt_body("return x * 0;", params="int x")
        assert isinstance(body[0].value, ir.EConst)
        assert body[0].value.value == 0

    def test_constant_branch_pruned(self):
        body = self.opt_body("if (true) { return 1; } else { return 2; }")
        assert len(body) == 1
        assert body[0].value.value == 1

    def test_unreachable_after_return_dropped_by_checker(self):
        # The checker rejects obviously unreachable code, but constant
        # folding can create it; e.g. a pruned branch.
        body = self.opt_body(
            "if (1 < 2) { return 5; } return 6;"
        )
        assert len(body) == 1

    def test_division_by_zero_not_folded(self):
        body = self.opt_body("return 1 / 0;")
        assert isinstance(body[0].value, ir.EBinary)

    def test_while_false_removed(self):
        body = self.opt_body("int s = 0; while (false) { s += 1; } return s;")
        assert not any(isinstance(s, ir.SWhile) for s in body)

    def test_pure_expression_statement_dropped(self):
        body = self.opt_body("int y = x; y + 1; return y;", params="int x")
        assert not any(isinstance(s, ir.SExpr) for s in body)

    def test_call_statement_not_dropped(self):
        source = """
        class T {
            static int g() { println(1); return 1; }
            static void m() { g(); }
        }
        """
        module = module_for(source)
        body = module.functions["T.m"].body
        assert any(isinstance(s, ir.SExpr) for s in body)

    def test_double_negation(self):
        body = self.opt_body("return - - x;", params="int x")
        assert isinstance(body[0].value, ir.ELocal)

    def test_java_division_truncates_toward_zero(self):
        body = self.opt_body("return -7 / 2;")
        assert body[0].value.value == -3

    def test_int_overflow_wraps(self):
        body = self.opt_body("return 2147483647 + 1;")
        assert body[0].value.value == -2147483648

    def test_cast_folding(self):
        body = self.opt_body("return (int) 2.9;")
        assert isinstance(body[0].value, ir.EConst)
        assert body[0].value.value == 2
