"""Tests for the IR verifier: hand-built broken IR must be rejected;
everything the real pipeline produces must pass (checked implicitly by
the whole suite, spot-checked here)."""

import pytest

from repro.apps import SUITE
from repro.errors import LoweringError
from repro.ir import build_ir, verify_module
from repro.ir import nodes as ir
from repro.ir.verifier import _FunctionVerifier
from repro.lime import analyze
from repro.lime import types as ty


def make_function(body, params=(), return_type=ty.VOID, is_local=False):
    return ir.IRFunction(
        qualified_name="T.broken",
        params=[ir.IRParam(n, t) for n, t in params],
        return_type=return_type,
        body=body,
        is_local=is_local,
    )


def make_module(function, extra_functions=()):
    functions = {function.qualified_name: function}
    for f in extra_functions:
        functions[f.qualified_name] = f
    return ir.IRModule(functions=functions, classes={})


def verify_one(function, extra=()):
    _FunctionVerifier(function, make_module(function, extra)).run()


class TestRejections:
    def test_undefined_local(self):
        f = make_function(
            [ir.SReturn(ir.ELocal(ty.INT, "ghost"))],
            return_type=ty.INT,
        )
        with pytest.raises(LoweringError, match="undefined local"):
            verify_one(f)

    def test_assignment_before_declaration(self):
        f = make_function(
            [ir.SAssignLocal("x", ir.EConst(ty.INT, 1))]
        )
        with pytest.raises(LoweringError, match="undefined local"):
            verify_one(f)

    def test_untyped_expression(self):
        f = make_function([ir.SExpr(ir.EConst(None, 1))])
        with pytest.raises(LoweringError, match="no type"):
            verify_one(f)

    def test_unknown_callee(self):
        f = make_function(
            [ir.SExpr(ir.ECall(ty.VOID, "Nowhere.m", []))]
        )
        with pytest.raises(LoweringError, match="unknown function"):
            verify_one(f)

    def test_break_outside_loop(self):
        f = make_function([ir.SBreak()])
        with pytest.raises(LoweringError, match="break/continue"):
            verify_one(f)

    def test_missing_return(self):
        f = make_function([], return_type=ty.INT)
        with pytest.raises(LoweringError, match="without returning"):
            verify_one(f)

    def test_value_return_from_void(self):
        f = make_function([ir.SReturn(ir.EConst(ty.INT, 1))])
        with pytest.raises(LoweringError, match="void"):
            verify_one(f)

    def test_unreachable_statement(self):
        f = make_function(
            [
                ir.SReturn(ir.EConst(ty.INT, 1)),
                ir.SExpr(ir.ECall(ty.VOID, "T.broken", [])),
            ],
            return_type=ty.INT,
        )
        with pytest.raises(LoweringError, match="unreachable"):
            verify_one(f)

    def test_graph_construction_in_local_function(self):
        f = make_function(
            [
                ir.SExpr(
                    ir.EGraphTask(
                        ty.TaskType(ty.INT, ty.INT), "T.x"
                    )
                )
            ],
            is_local=True,
        )
        f.body[0].expr.type = ty.TaskType(ty.INT, ty.INT)
        with pytest.raises(LoweringError, match="local method"):
            verify_one(f)

    def test_branch_scoped_local_rejected_after_join(self):
        cond = ir.EConst(ty.BOOLEAN, True)
        f = make_function(
            [
                ir.SIf(
                    cond,
                    [ir.SLet("x", ty.INT, ir.EConst(ty.INT, 1))],
                    [],
                ),
                ir.SReturn(ir.ELocal(ty.INT, "x")),
            ],
            return_type=ty.INT,
        )
        with pytest.raises(LoweringError, match="undefined local"):
            verify_one(f)


class TestAcceptances:
    def test_both_arm_definition_survives_join(self):
        cond_param = ("c", ty.BOOLEAN)
        f = make_function(
            [
                ir.SIf(
                    ir.ELocal(ty.BOOLEAN, "c"),
                    [ir.SLet("x", ty.INT, ir.EConst(ty.INT, 1))],
                    [ir.SLet("x", ty.INT, ir.EConst(ty.INT, 2))],
                ),
                ir.SReturn(ir.ELocal(ty.INT, "x")),
            ],
            params=[cond_param],
            return_type=ty.INT,
        )
        verify_one(f)

    def test_early_return_arm_keeps_other_arms_defs(self):
        f = make_function(
            [
                ir.SIf(
                    ir.ELocal(ty.BOOLEAN, "c"),
                    [ir.SReturn(ir.EConst(ty.INT, 0))],
                    [ir.SLet("x", ty.INT, ir.EConst(ty.INT, 2))],
                ),
                ir.SReturn(ir.ELocal(ty.INT, "x")),
            ],
            params=[("c", ty.BOOLEAN)],
            return_type=ty.INT,
        )
        verify_one(f)

    @pytest.mark.parametrize(
        "name", ["bitflip", "black_scholes", "crc8", "running_sum"]
    )
    def test_real_pipeline_output_verifies(self, name):
        module = build_ir(analyze(SUITE[name].source))
        verify_module(module)  # explicitly, beyond build_ir's own call
