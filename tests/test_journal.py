"""Tests for the durable job journal (repro.service.journal).

Covers the append-only framed file format (magic, schema stamp,
torn-write tolerance at *every* truncation offset), record folding
into :class:`JobReplay`, wire-canonical argument normalization, the
outcome digest, and the ``repro.recover/1`` report validator."""

import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    JOURNAL_SCHEMA,
    RECOVER_SCHEMA,
    Job,
    JobJournal,
    load_journal,
    outcome_digest,
    validate_recover_report,
)
from repro.service.journal import (
    JOURNAL_FILE,
    JOURNAL_MAGIC,
    canonical_args,
    RecoveredOutcome,
)
from repro.values import (
    KIND_FLOAT,
    ValueArray,
    frame_record,
    unframe_records,
)


def _job(job_id="job-0001", tenant="t0", args=None):
    return Job(
        job_id=job_id,
        tenant=tenant,
        source="class C { }",
        entry="C.m",
        args=args if args is not None else [7],
        app="demo",
        filename="<demo.lime>",
    )


def _write_journal(tmp_path, jobs=2):
    """A journal with a full lifecycle per job; returns its path."""
    journal = JobJournal(str(tmp_path))
    for index in range(jobs):
        job = _job(job_id=f"job-{index + 1:04d}", tenant=f"t{index}")
        journal.record_submitted(job)
        journal.record_admitted(job.job_id)
        journal.record_leased(job.job_id, ("gpu",))
        journal.record_running(job.job_id)
        job.digest = f"d{index}"
        job.fault_log = []
        job.outcome = RecoveredOutcome(
            value=3 * index,
            output=f"out{index}\n",
            total_s=0.5 + index,
            summary={"total_s": 0.5 + index},
            digest=job.digest,
            fault_log=[],
        )
        journal.record_completed(job)
    return str(tmp_path / JOURNAL_FILE)


def _frame_ends(data: bytes):
    """Byte offset (into the whole file) where each complete frame
    ends, in order."""
    body = data[len(JOURNAL_MAGIC):]
    payloads, torn = unframe_records(body)
    assert torn == 0
    ends = []
    offset = len(JOURNAL_MAGIC)
    for payload in payloads:
        offset += len(frame_record(payload))
        ends.append(offset)
    assert offset == len(data)
    return ends


class TestJournalFile:
    def test_fresh_file_has_magic_and_schema(self, tmp_path):
        path = _write_journal(tmp_path, jobs=1)
        data = open(path, "rb").read()
        assert data.startswith(JOURNAL_MAGIC)
        payloads, torn = unframe_records(data[len(JOURNAL_MAGIC):])
        assert torn == 0
        for payload in payloads:
            record = json.loads(payload.decode("utf-8"))
            assert record["schema"] == JOURNAL_SCHEMA

    def test_missing_file_is_empty_snapshot(self, tmp_path):
        snapshot = load_journal(str(tmp_path / "nowhere"))
        assert snapshot.jobs == {}
        assert snapshot.records == 0
        assert not snapshot.existed

    def test_bad_magic_raises(self, tmp_path):
        (tmp_path / JOURNAL_FILE).write_bytes(b"???\n12345")
        with pytest.raises(ConfigurationError):
            load_journal(str(tmp_path))

    def test_full_lifecycle_folds_terminal(self, tmp_path):
        _write_journal(tmp_path, jobs=2)
        snapshot = load_journal(str(tmp_path))
        assert sorted(snapshot.jobs) == ["job-0001", "job-0002"]
        for replay in snapshot.jobs.values():
            assert replay.terminal
            assert replay.admitted
            outcome = replay.outcome()
            assert outcome.output.startswith("out")
            assert outcome.seconds > 0.0

    def test_reopen_appends_instead_of_truncating(self, tmp_path):
        _write_journal(tmp_path, jobs=1)
        before = load_journal(str(tmp_path)).records
        journal = JobJournal(str(tmp_path))
        journal.record_admitted("job-0009")
        after = load_journal(str(tmp_path))
        assert after.records == before + 1

    def test_dead_journal_drops_appends(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.record_admitted("job-0001")
        journal.mark_dead()
        journal.record_admitted("job-0002")
        snapshot = load_journal(str(tmp_path))
        assert snapshot.records == 1


class TestTornTail:
    """Satellite: truncate the journal at EVERY byte offset and assert
    recovery drops only the torn record."""

    def test_truncation_at_every_offset(self, tmp_path):
        path = _write_journal(tmp_path, jobs=2)
        data = open(path, "rb").read()
        ends = _frame_ends(data)
        full = load_journal(str(tmp_path))
        assert full.records == len(ends)

        scratch = tmp_path / "scratch"
        scratch.mkdir()
        target = scratch / JOURNAL_FILE
        for offset in range(len(JOURNAL_MAGIC), len(data) + 1):
            target.write_bytes(data[:offset])
            snapshot = load_journal(str(scratch))
            complete = [e for e in ends if e <= offset]
            # Only whole frames decode; the torn tail is surfaced,
            # byte-exact, never guessed at.
            assert snapshot.records == len(complete), offset
            boundary = complete[-1] if complete else len(JOURNAL_MAGIC)
            assert snapshot.torn_bytes == offset - boundary, offset
            # Folded job state equals the state at the last complete
            # frame: a clean prefix, nothing else.
            states = {
                job_id: replay.state
                for job_id, replay in snapshot.jobs.items()
            }
            target.write_bytes(data[:boundary])
            clean = load_journal(str(scratch))
            assert states == {
                job_id: replay.state
                for job_id, replay in clean.jobs.items()
            }, offset

    def test_corrupt_byte_in_last_frame_drops_only_it(self, tmp_path):
        path = _write_journal(tmp_path, jobs=2)
        data = open(path, "rb").read()
        ends = _frame_ends(data)
        last_start = ends[-2]
        rng = random.Random(1234)
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        target = scratch / JOURNAL_FILE
        for _ in range(32):
            position = rng.randrange(last_start, len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            target.write_bytes(bytes(corrupted))
            snapshot = load_journal(str(scratch))
            assert snapshot.records == len(ends) - 1, position

    def test_append_after_torn_tail_recovers_cleanly(self, tmp_path):
        """A journal whose tail tore mid-frame keeps accepting
        appends from a new incarnation; the torn bytes stay inert."""
        path = _write_journal(tmp_path, jobs=1)
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[:-3])
        snapshot = load_journal(str(tmp_path))
        torn_records = snapshot.records
        assert snapshot.torn_bytes > 0
        # NOTE: a real restart truncates through JobJournal -- here we
        # only assert the loader's tolerance is stable across loads.
        again = load_journal(str(tmp_path))
        assert again.records == torn_records


class TestCanonicalArgs:
    def test_floats_canonicalize_to_wire_precision(self):
        values = [ValueArray(KIND_FLOAT, [0.1, 0.2, 1.0 / 3.0])]
        once = canonical_args(values)
        twice = canonical_args(once)
        assert [list(v) for v in once] == [list(v) for v in twice]
        # 0.1 is not representable in f32: one round-trip moves it,
        # a second one must not.
        assert list(once[0]) != [0.1, 0.2, 1.0 / 3.0]

    def test_ints_pass_through(self):
        assert canonical_args([5, True]) == [5, True]


class TestOutcomeDigest:
    def test_deterministic(self):
        a = outcome_digest(5, "out\n", 1.25, [])
        b = outcome_digest(5, "out\n", 1.25, [])
        assert a == b

    def test_sensitive_to_every_component(self):
        base = outcome_digest(5, "out\n", 1.25, [])
        assert outcome_digest(6, "out\n", 1.25, []) != base
        assert outcome_digest(5, "OUT\n", 1.25, []) != base
        assert outcome_digest(5, "out\n", 1.5, []) != base
        assert outcome_digest(
            5, "out\n", 1.25, [{"site": "device"}]
        ) != base


class TestRecoverReportValidator:
    def _report(self):
        return {
            "schema": RECOVER_SCHEMA,
            "journal": {"path": "j", "records": 1, "torn_bytes": 0},
            "deduped": [],
            "recovered": [
                {
                    "job_id": "job-0001",
                    "app": "demo",
                    "tenant": "t0",
                    "mode": "checkpoint",
                    "state": "completed",
                }
            ],
            "rejected": [],
            "totals": {
                "jobs": 1,
                "deduped": 0,
                "recovered": 1,
                "from_checkpoint": 1,
                "from_scratch": 0,
                "rejected": 0,
            },
        }

    def test_valid(self):
        assert validate_recover_report(self._report()) == []

    def test_bad_schema(self):
        report = self._report()
        report["schema"] = "nope/1"
        assert validate_recover_report(report)

    def test_bad_mode(self):
        report = self._report()
        report["recovered"][0]["mode"] = "sideways"
        assert validate_recover_report(report)

    def test_inconsistent_totals(self):
        report = self._report()
        report["totals"]["recovered"] = 7
        assert validate_recover_report(report)

    def test_not_a_dict(self):
        assert validate_recover_report([1, 2])
