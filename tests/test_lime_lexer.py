"""Unit tests for the Lime lexer."""

import pytest

from repro.errors import LimeSyntaxError
from repro.lime import lex
from repro.lime.tokens import TokenKind
from repro.values import Bit


def kinds(source):
    return [t.kind for t in lex(source)][:-1]  # drop EOF


class TestBasics:
    def test_empty_source(self):
        tokens = lex("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("foo class value local task") == [
            TokenKind.IDENT,
            TokenKind.KW_CLASS,
            TokenKind.KW_VALUE,
            TokenKind.KW_LOCAL,
            TokenKind.KW_TASK,
        ]

    def test_line_comments_skipped(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comments_skipped(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LimeSyntaxError):
            lex("a /* never closed")

    def test_positions_track_lines(self):
        tokens = lex("a\n  b")
        assert tokens[0].position.line == 1
        assert tokens[1].position.line == 2
        assert tokens[1].position.column == 3

    def test_unexpected_character(self):
        with pytest.raises(LimeSyntaxError):
            lex("a $ b")


class TestOperators:
    def test_connect_vs_assign_vs_eq(self):
        assert kinds("= => ==") == [
            TokenKind.ASSIGN,
            TokenKind.CONNECT,
            TokenKind.EQ,
        ]

    def test_map_and_reduce_tokens(self):
        assert kinds("@ !") == [TokenKind.AT, TokenKind.BANG]

    def test_bang_equals(self):
        assert kinds("!=") == [TokenKind.NE]

    def test_shifts_and_relations(self):
        assert kinds("< << <= > >> >=") == [
            TokenKind.LT,
            TokenKind.SHL,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.SHR,
            TokenKind.GE,
        ]

    def test_compound_assignment(self):
        assert kinds("+= -= *= /= ++ --") == [
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
            TokenKind.STAR_ASSIGN,
            TokenKind.SLASH_ASSIGN,
            TokenKind.PLUS_PLUS,
            TokenKind.MINUS_MINUS,
        ]

    def test_brackets_are_individual_tokens(self):
        # '[[]]' lexes as four tokens; the parser reassembles them.
        assert kinds("bit[[]]") == [
            TokenKind.KW_BIT,
            TokenKind.LBRACKET,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.RBRACKET,
        ]


class TestNumbers:
    def test_int_literal(self):
        token = lex("42")[0]
        assert token.kind == TokenKind.INT_LIT
        assert token.value == 42

    def test_long_literal(self):
        token = lex("42L")[0]
        assert token.kind == TokenKind.LONG_LIT
        assert token.value == 42

    def test_float_literal(self):
        token = lex("2.5f")[0]
        assert token.kind == TokenKind.FLOAT_LIT
        assert token.value == 2.5

    def test_double_literal(self):
        token = lex("2.5")[0]
        assert token.kind == TokenKind.DOUBLE_LIT
        assert token.value == 2.5

    def test_exponent_literal(self):
        token = lex("1e-3")[0]
        assert token.kind == TokenKind.DOUBLE_LIT
        assert token.value == 1e-3

    def test_member_access_on_int_stays_int(self):
        # '1.foo' must not lex 1. as a double.
        assert kinds("x1.length") == [TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT]


class TestBitLiterals:
    def test_paper_literal_100b(self):
        token = lex("100b")[0]
        assert token.kind == TokenKind.BIT_LIT
        assert token.value == (Bit.ZERO, Bit.ZERO, Bit.ONE)

    def test_single_bit_literals(self):
        assert lex("0b")[0].kind == TokenKind.BIT_LIT
        assert lex("1b")[0].kind == TokenKind.BIT_LIT

    def test_nine_bit_waveform_input(self):
        # The Figure 4 example drives 9 input bits.
        token = lex("110010111b")[0]
        assert token.kind == TokenKind.BIT_LIT
        assert len(token.value) == 9

    def test_malformed_bit_literal(self):
        with pytest.raises(LimeSyntaxError):
            lex("102b")

    def test_bit_literal_requires_boundary(self):
        # '100bc' is an error (no identifier may follow a number).
        tokens = lex("100bc")
        # lexes as INT 100 then IDENT 'bc' — the parser will reject the
        # juxtaposition, but the lexer must not claim a bit literal.
        assert tokens[0].kind == TokenKind.INT_LIT
        assert tokens[1].kind == TokenKind.IDENT


class TestStrings:
    def test_string_literal(self):
        token = lex('"hello"')[0]
        assert token.kind == TokenKind.STRING_LIT
        assert token.value == "hello"

    def test_escapes(self):
        assert lex(r'"a\nb"')[0].value == "a\nb"
        assert lex(r'"a\"b"')[0].value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(LimeSyntaxError):
            lex('"oops')
