"""Unit tests for the Lime parser."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY, USER_ENUM
from repro.errors import LimeSyntaxError
from repro.lime import parse
from repro.lime import ast_nodes as ast


class TestFigure1:
    def test_parses(self):
        program = parse(FIGURE1)
        assert len(program.classes) == 1
        cls = program.classes[0]
        assert cls.name == "Bitflip"
        assert [m.name for m in cls.methods] == [
            "flip",
            "mapFlip",
            "taskFlip",
        ]

    def test_flip_modifiers(self):
        cls = parse(FIGURE1).classes[0]
        flip = cls.methods[0]
        assert "local" in flip.modifiers
        assert "static" in flip.modifiers

    def test_map_expression_shape(self):
        cls = parse(FIGURE1).classes[0]
        map_flip = cls.methods[1]
        decl = map_flip.body.statements[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.type_syntax is None  # 'var'
        assert isinstance(decl.init, ast.MapExpr)
        assert decl.init.receiver == "Bitflip"
        assert decl.init.method == "flip"

    def test_task_graph_shape(self):
        cls = parse(FIGURE1).classes[0]
        task_flip = cls.methods[2]
        graph_decl = task_flip.body.statements[1]
        connect = graph_decl.init
        # ((source => reloc) => sink)
        assert isinstance(connect, ast.ConnectExpr)
        assert isinstance(connect.left, ast.ConnectExpr)
        source = connect.left.left
        reloc = connect.left.right
        sink = connect.right
        assert isinstance(source, ast.Call) and source.name == "source"
        assert isinstance(reloc, ast.RelocExpr)
        assert isinstance(reloc.inner, ast.TaskExpr)
        assert reloc.inner.method == "flip"
        assert isinstance(sink, ast.Call) and sink.name == "sink"
        assert len(sink.type_args) == 1
        assert sink.type_args[0].name == "bit"

    def test_value_array_types(self):
        cls = parse(FIGURE1).classes[0]
        map_flip = cls.methods[1]
        assert str(map_flip.return_type) == "bit[[]]"
        assert str(map_flip.params[0].type_syntax) == "bit[[]]"


class TestEnum:
    def test_user_enum(self):
        program = parse(USER_ENUM)
        cls = program.classes[0]
        assert cls.is_enum
        assert cls.is_value
        assert cls.enum_constants == ["red", "green", "blue"]
        assert len(cls.methods) == 1

    def test_operator_method(self):
        cls = parse(USER_ENUM).classes[0]
        op = cls.methods[0]
        assert op.is_operator
        assert op.name == "~"
        assert op.params == []

    def test_figure1_bit_enum_shape(self):
        # Figure 1 lines 1-6 verbatim, with a non-reserved name.
        source = """
        public value enum mybit {
            zero, one;
            public mybit ~ this {
                return this == zero ? one : zero;
            }
        }
        """
        cls = parse(source).classes[0]
        assert cls.enum_constants == ["zero", "one"]
        assert cls.methods[0].is_operator


class TestExpressions:
    def wrap(self, expr_text, pre=""):
        source = f"class T {{ static void m() {{ {pre} var r = {expr_text}; }} }}"
        program = parse(source)
        body = program.classes[0].methods[0].body
        return body.statements[-1].init

    def test_precedence_mul_over_add(self):
        expr = self.wrap("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_ternary(self):
        expr = self.wrap("true ? 1 : 2")
        assert isinstance(expr, ast.Ternary)

    def test_reduce_expr(self):
        expr = self.wrap("Ops ! add(xs)")
        assert isinstance(expr, ast.ReduceExpr)
        assert expr.receiver == "Ops"
        assert expr.method == "add"

    def test_unary_not_vs_reduce(self):
        expr = self.wrap("!flag")
        assert isinstance(expr, ast.Unary) and expr.op == "!"

    def test_new_array(self):
        expr = self.wrap("new int[10]")
        assert isinstance(expr, ast.New)
        assert expr.array_length is not None

    def test_new_value_array_conversion(self):
        expr = self.wrap("new bit[[]](result)")
        assert isinstance(expr, ast.New)
        assert expr.type_syntax.array_dims == ["value"]

    def test_cast(self):
        expr = self.wrap("(int) x")
        assert isinstance(expr, ast.Cast)

    def test_parenthesized_not_cast(self):
        expr = self.wrap("(x)")
        assert isinstance(expr, ast.Name)

    def test_chained_connects_left_associative(self):
        expr = self.wrap("a => b => c")
        assert isinstance(expr, ast.ConnectExpr)
        assert isinstance(expr.left, ast.ConnectExpr)

    def test_index_chains(self):
        expr = self.wrap("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.array, ast.Index)

    def test_task_with_class_qualifier(self):
        expr = self.wrap("task Ops.f")
        assert isinstance(expr, ast.TaskExpr)
        assert expr.receiver == "Ops"
        assert expr.method == "f"

    def test_nested_index_not_value_array_decl(self):
        # a[b[i]] = 1; must parse as an assignment, not a declaration.
        source = "class T { static void m(int[] a, int[] b, int i) { a[b[i]] = 1; } }"
        program = parse(source)
        stmt = program.classes[0].methods[0].body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Assign)


class TestStatements:
    def parse_body(self, body_text, params=""):
        source = f"class T {{ static void m({params}) {{ {body_text} }} }}"
        return parse(source).classes[0].methods[0].body.statements

    def test_if_else(self):
        stmts = self.parse_body("if (x) { return; } else { return; }", "boolean x")
        assert isinstance(stmts[0], ast.If)
        assert stmts[0].other is not None

    def test_for_loop(self):
        stmts = self.parse_body("for (int i = 0; i < 10; i++) { }")
        loop = stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.update, ast.Unary)

    def test_while_loop(self):
        stmts = self.parse_body("while (x) { }", "boolean x")
        assert isinstance(stmts[0], ast.While)

    def test_multi_declarator(self):
        stmts = self.parse_body("int a = 1, b = 2;")
        assert isinstance(stmts[0], ast.Block)
        assert len(stmts[0].statements) == 2

    def test_break_continue(self):
        stmts = self.parse_body("while (true) { break; } while (true) { continue; }")
        assert isinstance(stmts[0].body.statements[0], ast.Break)
        assert isinstance(stmts[1].body.statements[0], ast.Continue)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(LimeSyntaxError):
            parse("class T { static void m() { int x = 1 } }")

    def test_bad_assignment_target(self):
        with pytest.raises(LimeSyntaxError):
            parse("class T { static void m() { 1 = 2; } }")

    def test_unclosed_class(self):
        with pytest.raises(LimeSyntaxError):
            parse("class T {")

    def test_map_receiver_must_be_name(self):
        with pytest.raises(LimeSyntaxError):
            parse("class T { static void m() { var x = (1+2) @ f(a); } }")

    def test_type_args_require_call(self):
        with pytest.raises(LimeSyntaxError):
            parse("class T { static void m(int[] r) { var x = r.<bit>field; } }")


class TestSaxpy:
    def test_parses(self):
        program = parse(SAXPY)
        assert program.classes[0].name == "Saxpy"
        assert len(program.classes[0].methods) == 4
