"""Semantic analysis tests: typing, strong isolation, purity, task graphs."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY, USER_ENUM
from repro.errors import IsolationError, LimeTypeError, TaskGraphError
from repro.lime import analyze
from repro.lime import types as ty


def wrap(body, params="", modifiers="static", extra=""):
    return (
        f"class T {{ {extra} {modifiers} void m({params}) {{ {body} }} }}"
    )


class TestFigure1:
    def test_checks_clean(self):
        checked = analyze(FIGURE1)
        assert "Bitflip" in checked.classes

    def test_flip_is_pure(self):
        checked = analyze(FIGURE1)
        flip = checked.method("Bitflip.flip")
        assert flip.is_local
        assert flip.is_pure

    def test_taskflip_is_global_and_not_pure(self):
        checked = analyze(FIGURE1)
        task_flip = checked.method("Bitflip.taskFlip")
        assert not task_flip.is_local
        assert not task_flip.is_pure

    def test_taskflip_builds_tasks(self):
        checked = analyze(FIGURE1)
        facts = checked.facts("Bitflip.taskFlip")
        assert facts.builds_tasks

    def test_mapflip_types(self):
        checked = analyze(FIGURE1)
        map_flip = checked.method("Bitflip.mapFlip")
        assert map_flip.return_type == ty.ArrayType(ty.BIT, is_value=True)


class TestValueEnum:
    def test_user_enum_checks(self):
        checked = analyze(USER_ENUM)
        info = checked.classes["color"]
        assert info.is_enum and info.is_value
        assert info.enum_descriptor.constants == ["red", "green", "blue"]

    def test_enum_methods_implicitly_local(self):
        checked = analyze(USER_ENUM)
        op = checked.classes["color"].find_method("~")
        assert op.is_local

    def test_non_value_enum_rejected(self):
        with pytest.raises(LimeTypeError):
            analyze("public enum e { a, b; }")

    def test_enum_fields_rejected(self):
        with pytest.raises(LimeTypeError):
            analyze("public value enum e { a, b; int f; }")


class TestIsolation:
    def test_local_cannot_call_global(self):
        source = """
        class T {
            static int g(int x) { return x; }
            local static int f(int x) { return g(x); }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_global_can_call_local(self):
        source = """
        class T {
            local static int f(int x) { return x; }
            static int g(int x) { return f(x); }
        }
        """
        analyze(source)

    def test_local_cannot_do_io(self):
        with pytest.raises(IsolationError):
            analyze(wrap("println(1);", modifiers="local static"))

    def test_global_io_allowed(self):
        analyze(wrap('println("hello");'))

    def test_local_cannot_read_static_mutable(self):
        source = """
        class T {
            static int counter;
            local static int f() { return counter; }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_local_can_read_static_final(self):
        source = """
        class T {
            static final int limit = 10;
            local static int f() { return limit; }
        }
        """
        analyze(source)

    def test_local_cannot_build_tasks(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            local static void g(bit[[]] xs) {
                var t = xs.source(1);
            }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_local_cannot_use_strings(self):
        with pytest.raises(IsolationError):
            analyze(
                "class T { local static void m() { String s = \"x\"; } }"
            )

    def test_value_class_fields_must_be_values(self):
        source = "value class V { int[] data; }"
        with pytest.raises(IsolationError):
            analyze(source)

    def test_value_class_fields_are_final(self):
        source = """
        value class V {
            int x;
            V(int x0) { this.x = x0; }
        }
        class T {
            static void m(V v) { v.x = 3; }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_value_class_constructor_may_assign_fields(self):
        source = """
        value class V {
            int x;
            V(int x0) { this.x = x0; }
        }
        """
        analyze(source)

    def test_value_array_elements_read_only(self):
        with pytest.raises(IsolationError):
            analyze(wrap("xs[0] = 1;", params="int[[]] xs"))

    def test_mutable_array_elements_writable(self):
        analyze(wrap("xs[0] = 1;", params="int[] xs"))

    def test_value_array_of_mutable_rejected(self):
        # int[[]][] is a value array whose elements are mutable arrays
        # (suffixes read outermost first, as in Java).
        with pytest.raises(IsolationError):
            analyze("class T { static void m(int[[]][] xs) { } }")


class TestPurity:
    def test_pure_transitively(self):
        source = """
        class T {
            local static int a(int x) { return x + 1; }
            local static int b(int x) { return a(x) * 2; }
        }
        """
        checked = analyze(source)
        assert checked.method("T.a").is_pure
        assert checked.method("T.b").is_pure

    def test_math_intrinsics_preserve_purity(self):
        source = (
            "class T { local static double f(double x) "
            "{ return Math.sqrt(x) + Math.exp(x); } }"
        )
        checked = analyze(source)
        assert checked.method("T.f").is_pure

    def test_enum_operator_is_pure(self):
        checked = analyze(USER_ENUM)
        assert checked.classes["color"].find_method("~").is_pure

    def test_mutable_array_param_breaks_purity(self):
        source = "class T { local static int f(int[] xs) { return xs[0]; } }"
        checked = analyze(source)
        assert not checked.method("T.f").is_pure

    def test_global_methods_never_pure(self):
        source = "class T { static int f(int x) { return x; } }"
        checked = analyze(source)
        assert not checked.method("T.f").is_pure


class TestTaskGraphTyping:
    def test_connect_type_mismatch(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            local static int g(int x) { return x; }
            static void m(bit[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task f ]) => ([ task g ]) => out.sink();
            }
        }
        """
        with pytest.raises(TaskGraphError):
            analyze(source)

    def test_valid_pipeline(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs, bit[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        analyze(source)

    def test_task_over_global_method_rejected(self):
        source = """
        class T {
            static bit f(bit b) { return b; }
            static void m(bit[[]] xs, bit[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
            }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_source_requires_value_array(self):
        source = """
        class T {
            static void m(bit[] xs) { var t = xs.source(1); }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_sink_requires_mutable_array(self):
        source = """
        class T {
            static void m(bit[[]] xs) { var t = xs.sink(); }
        }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)

    def test_cannot_finish_open_graph(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs) {
                var t = xs.source(1) => ([ task f ]);
                t.finish();
            }
        }
        """
        with pytest.raises(TaskGraphError):
            analyze(source)

    def test_reloc_requires_task_expression(self):
        with pytest.raises(TaskGraphError):
            analyze(wrap("var x = ([ 1 + 2 ]);"))

    def test_sink_generic_argument_must_match(self):
        source = """
        class T {
            local static bit f(bit b) { return b; }
            static void m(bit[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task f ]) => out.<bit>sink();
            }
        }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)

    def test_task_method_void_rejected(self):
        source = """
        class T {
            local static void f(bit b) { }
            static void m(bit[[]] xs) {
                var t = xs.source(1) => ([ task f ]);
            }
        }
        """
        with pytest.raises(TaskGraphError):
            analyze(source)


class TestMapReduce:
    def test_saxpy_checks(self):
        checked = analyze(SAXPY)
        assert checked.method("Saxpy.axpy").is_pure

    def test_map_requires_local_static(self):
        source = """
        class T {
            static int f(int x) { return x; }
            static void m(int[[]] xs) { var r = T @ f(xs); }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_map_over_two_arrays(self):
        source = """
        class T {
            local static int add(int a, int b) { return a + b; }
            static int[[]] m(int[[]] xs, int[[]] ys) { return T @ add(xs, ys); }
        }
        """
        analyze(source)

    def test_reduce_requires_binary_method(self):
        source = """
        class T {
            local static int f(int x) { return x; }
            static void m(int[[]] xs) { var r = T ! f(xs); }
        }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)

    def test_map_arg_must_be_value_array(self):
        source = """
        class T {
            local static int f(int x) { return x; }
            static void m(int[] xs) { var r = T @ f(xs); }
        }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)


class TestGeneralTyping:
    def test_numeric_promotion(self):
        checked = analyze(wrap("var x = 1 + 2.5;"))
        assert checked is not None

    def test_bad_arithmetic(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("var x = true + 1;"))

    def test_condition_must_be_boolean(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("if (1) { }"))

    def test_missing_return_detected(self):
        with pytest.raises(LimeTypeError):
            analyze("class T { static int f(boolean b) { if (b) return 1; } }")

    def test_both_branches_return_ok(self):
        analyze(
            "class T { static int f(boolean b) "
            "{ if (b) return 1; else return 2; } }"
        )

    def test_unreachable_statement(self):
        with pytest.raises(LimeTypeError):
            analyze("class T { static int f() { return 1; return 2; } }")

    def test_no_shadowing(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("int x = 1; { int x = 2; }"))

    def test_unknown_variable(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("var x = nope;"))

    def test_var_requires_initializer(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("var x;"))

    def test_bit_constant_access(self):
        analyze(wrap("bit b = bit.zero; b = ~b;"))

    def test_bit_invert_type(self):
        analyze(wrap("bit b = ~bit.one;"))

    def test_narrowing_requires_cast(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("int x = 2.5;"))
        analyze(wrap("int x = (int) 2.5;"))

    def test_widening_implicit(self):
        analyze(wrap("double d = 1;"))

    def test_array_length(self):
        analyze(wrap("int n = xs.length;", params="int[[]] xs"))

    def test_break_outside_loop(self):
        with pytest.raises(LimeTypeError):
            analyze(wrap("break;"))

    def test_value_class_requires_ctor_when_fields(self):
        source = """
        value class V { int x; }
        class T { static void m() { var v = new V(); } }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)

    def test_string_concat_in_global(self):
        analyze(wrap('String s = "n=" + 3; println(s);'))

    def test_duplicate_class_rejected(self):
        with pytest.raises(LimeTypeError):
            analyze("class A { } class A { }")

    def test_duplicate_method_rejected(self):
        with pytest.raises(LimeTypeError):
            analyze("class A { static void m() { } static void m() { } }")
