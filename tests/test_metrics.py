"""Tests for the repro.obs.metrics registry.

Covers counter shard merging under real thread contention (including a
full ThreadedScheduler run), gauge min/max tracking, histogram bucket
placement and clamped quantile estimation, registry snapshot/reset,
and the zero-overhead null registry.
"""

import threading

import pytest

from repro.apps import SUITE
from repro.compiler import CompileOptions, compile_program
from repro.obs import (
    NULL_METRICS,
    Counters,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    as_metrics,
)
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    SIZE_BUCKETS,
    TIME_US_BUCKETS,
    default_buckets_for,
)
from repro.runtime import Runtime, RuntimeConfig


class TestCountersSharding:
    def test_add_merges_across_threads(self):
        counters = Counters()
        n_threads, n_incr = 8, 2000

        def worker():
            for _ in range(n_incr):
                counters.add("hits")
                counters.add("bytes", 3)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = counters.snapshot()
        assert snap["hits"] == n_threads * n_incr
        assert snap["bytes"] == 3 * n_threads * n_incr

    def test_concurrent_snapshot_never_loses_counts(self):
        """Snapshots taken while writers are mutating must never see a
        total above the final value and the final total must be exact
        (the dict-resize retry path in ``_merged``)."""
        counters = Counters()
        stop = threading.Event()
        n_incr = 5000

        def writer(worker_id):
            for i in range(n_incr):
                counters.add("n")
                # Churn the shard dict's key set so resizes happen
                # while the reader iterates.
                counters.add(f"k{worker_id}.{i % 97}")

        def reader():
            while not stop.is_set():
                snap = counters.snapshot()
                assert snap.get("n", 0) <= 4 * n_incr

        writers = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        observer = threading.Thread(target=reader)
        observer.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        observer.join()
        assert counters.get("n") == 4 * n_incr

    def test_reset_clears_every_shard(self):
        counters = Counters()
        done = threading.Event()

        def other_thread():
            counters.add("x", 7)
            done.set()

        t = threading.Thread(target=other_thread)
        t.start()
        done.wait()
        t.join()
        counters.add("x", 1)
        assert counters.get("x") == 8
        counters.reset()
        assert counters.snapshot() == {}

    def test_threaded_scheduler_counts_are_exact(self):
        """Satellite regression test: a ThreadedScheduler run mutates
        the shared counters from every stage thread; totals must match
        the equivalent sequential run exactly."""
        totals = {}
        for scheduler in ("sequential", "threaded"):
            tracer = Tracer()
            compiled = compile_program(
                SUITE["bitflip"].source,
                options=CompileOptions(tracer=tracer),
            )
            entry, args = SUITE["bitflip"].default_args()
            Runtime(
                compiled, RuntimeConfig(scheduler=scheduler, tracer=tracer)
            ).run(entry, args)
            snap = tracer.counters.snapshot()
            totals[scheduler] = {
                k: v
                for k, v in snap.items()
                if k.startswith(("marshal.", "substitution."))
            }
        assert totals["threaded"] == totals["sequential"]
        assert totals["threaded"]["marshal.batch.crossings"] >= 1


class TestGauge:
    def test_set_tracks_min_max_updates(self):
        g = Gauge("queue.depth")
        for v in (3, 1, 8, 5):
            g.set(v)
        snap = g.snapshot()
        assert snap["value"] == 5
        assert snap["min"] == 1
        assert snap["max"] == 8
        assert snap["updates"] == 4

    def test_add_is_relative(self):
        g = Gauge("inflight")
        g.add(2)
        g.add(3)
        g.add(-4)
        assert g.value == 1
        assert g.max == 5


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        h = Histogram("t", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 5000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 1, 1]
        assert snap["overflow"] == 1
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 5000

    def test_quantiles_clamped_to_observed_range(self):
        """Bucketed interpolation must never report an estimate above
        the observed maximum (wide-bucket artifact)."""
        h = Histogram("bytes", buckets=SIZE_BUCKETS)
        h.observe(6150)
        h.observe(6150)
        assert h.quantile(0.5) <= 6150
        assert h.quantile(0.99) <= 6150
        assert h.quantile(0.5) >= 0

    def test_quantile_ordering(self):
        h = Histogram("us", buckets=TIME_US_BUCKETS)
        for v in range(1, 1001):
            h.observe(float(v))
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert p50 <= p90 <= p99 <= 1000
        assert 300 <= p50 <= 700

    def test_default_buckets_by_name(self):
        assert default_buckets_for("marshal.crossing_us") == TIME_US_BUCKETS
        assert default_buckets_for("stage.item_latency_us[x]") == (
            TIME_US_BUCKETS
        )
        assert default_buckets_for("queue.depth[a->b]") == DEPTH_BUCKETS
        assert default_buckets_for("marshal.bytes") == SIZE_BUCKETS

    def test_reset(self):
        h = Histogram("t")
        h.observe(5)
        h.reset()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None


class TestMetricsRegistry:
    def test_instruments_are_memoized(self):
        m = MetricsRegistry()
        assert m.histogram("a_us") is m.histogram("a_us")
        assert m.gauge("g") is m.gauge("g")

    def test_snapshot_sections(self):
        m = MetricsRegistry()
        m.counters.add("c", 2)
        m.gauge("g").set(1)
        m.histogram("h_us").observe(10)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"]["g"]["value"] == 1
        assert snap["histograms"]["h_us"]["count"] == 1

    def test_reset_clears_all(self):
        m = MetricsRegistry()
        m.counters.add("c")
        m.gauge("g").set(1)
        m.histogram("h").observe(1)
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"]["g"]["updates"] == 0
        assert snap["histograms"]["h"]["count"] == 0

    def test_concurrent_histogram_creation(self):
        m = MetricsRegistry()
        results = []

        def create():
            results.append(m.histogram("shared_us"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(h is results[0] for h in results)


class TestNullMetrics:
    def test_disabled_and_silent(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counters.add("x")
        NULL_METRICS.gauge("g").set(3)
        NULL_METRICS.histogram("h").observe(1.0)
        snap = NULL_METRICS.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_instruments_are_shared_singletons(self):
        assert NULL_METRICS.gauge("a") is NULL_METRICS.gauge("b")
        assert NULL_METRICS.histogram("a") is NULL_METRICS.histogram("b")

    def test_as_metrics_coercion(self):
        live = MetricsRegistry()
        assert as_metrics(live) is live
        assert as_metrics(None) is NULL_METRICS

    def test_tracer_owns_registry(self):
        tracer = Tracer()
        assert tracer.metrics.enabled
        assert tracer.counters is tracer.metrics.counters


class TestRuntimeInstrumentation:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        compiled = compile_program(
            SUITE["bitflip"].source, options=CompileOptions(tracer=tracer)
        )
        entry, args = SUITE["bitflip"].default_args()
        outcome = Runtime(
            compiled, RuntimeConfig(scheduler="threaded", tracer=tracer)
        ).run(entry, args)
        return tracer, outcome

    def test_marshal_histograms_populated(self, traced):
        tracer, _ = traced
        snap = tracer.metrics.snapshot()["histograms"]
        assert snap["marshal.crossing_us"]["count"] >= 2
        assert snap["marshal.batch.size"]["count"] >= 1
        assert snap["marshal.bytes_per_crossing"]["min"] > 0

    def test_offload_histograms_populated(self, traced):
        tracer, _ = traced
        snap = tracer.metrics.snapshot()["histograms"]
        assert snap["offload.batch.items"]["count"] >= 1
        assert snap["offload.kernel_us"]["sum"] > 0

    def test_queue_depth_sampled_per_edge(self, traced):
        tracer, _ = traced
        snap = tracer.metrics.snapshot()
        depth_hists = {
            name: h
            for name, h in snap["histograms"].items()
            if name.startswith("queue.depth[")
        }
        assert len(depth_hists) >= 2  # source->filter, filter->sink
        for hist in depth_hists.values():
            assert hist["count"] >= 1
            assert hist["max"] >= 0

    def test_queue_wait_counters_per_edge(self, traced):
        tracer, _ = traced
        snap = tracer.counters.snapshot()
        producer = [k for k in snap if k.startswith("queue.producer_wait_us[")]
        consumer = [k for k in snap if k.startswith("queue.consumer_wait_us[")]
        assert producer and consumer

    def test_stage_spans_carry_queue_wait(self, traced):
        tracer, _ = traced
        stages = tracer.find("run.graph.stage")
        assert stages
        for span in stages:
            assert "queue_wait_us" in span.attributes
            assert span.attributes["queue_wait_us"] >= 0.0

    def test_disabled_runtime_records_nothing(self):
        compiled = compile_program(SUITE["bitflip"].source)
        entry, args = SUITE["bitflip"].default_args()
        Runtime(compiled, RuntimeConfig(scheduler="threaded")).run(
            entry, args
        )
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
