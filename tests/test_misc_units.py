"""Small-unit coverage: struct values, source positions, kinds."""

import pytest

from repro.errors import SourcePosition, ValueSemanticsError
from repro.values import Kind, array_kind, default_value, enum_kind, is_value
from repro.values.base import KIND_BIT, KIND_INT
from repro.values.structs import StructValue


class TestStructValue:
    def test_field_roundtrip(self):
        s = StructValue("P", ["x", "y"], False)
        s.set("x", 1)
        assert s.get("x") == 1
        assert s.get("y") is None

    def test_unknown_field(self):
        s = StructValue("P", ["x"], False)
        with pytest.raises(ValueSemanticsError):
            s.get("z")
        with pytest.raises(ValueSemanticsError):
            s.set("z", 1)

    def test_freeze_blocks_mutation(self):
        s = StructValue("P", ["x"], True)
        s.set("x", 1)
        s.freeze()
        with pytest.raises(ValueSemanticsError):
            s.set("x", 2)

    def test_equality_structural(self):
        a = StructValue("P", ["x"], True)
        a.set("x", 5)
        b = StructValue("P", ["x"], True)
        b.set("x", 5)
        assert a == b
        b.set("x", 6)
        assert a != b

    def test_hash_requires_frozen(self):
        s = StructValue("P", ["x"], True)
        with pytest.raises(ValueSemanticsError):
            hash(s)
        s.freeze()
        assert isinstance(hash(s), int)

    def test_repr(self):
        s = StructValue("P", ["x"], False)
        s.set("x", 3)
        assert repr(s) == "P(x=3)"


class TestSourcePosition:
    def test_equality_and_hash(self):
        a = SourcePosition(1, 2, "f")
        b = SourcePosition(1, 2, "f")
        c = SourcePosition(1, 3, "f")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self):
        assert repr(SourcePosition(3, 7, "x.lime")) == "x.lime:3:7"


class TestKinds:
    def test_kind_str(self):
        assert str(KIND_INT) == "int"
        assert str(array_kind(KIND_BIT)) == "bit[[]]"
        assert str(enum_kind("color", 3)) == "enum color"

    def test_invalid_kinds_rejected(self):
        with pytest.raises(ValueError):
            Kind("widget")
        with pytest.raises(ValueError):
            Kind("enum")  # needs a name
        with pytest.raises(ValueError):
            Kind("array")  # needs an element

    def test_wire_bits(self):
        assert KIND_INT.wire_bits() == 32
        assert KIND_BIT.wire_bits() == 1
        assert enum_kind("e", 2).wire_bits() == 8
        with pytest.raises(ValueError):
            array_kind(KIND_INT).wire_bits()

    def test_default_values(self):
        from repro.values import Bit

        assert default_value(KIND_INT) == 0
        assert default_value(KIND_BIT) is Bit.ZERO
        assert list(default_value(array_kind(KIND_INT))) == []

    def test_is_value_predicate(self):
        from repro.values import MutableArray, ValueArray

        assert is_value(1)
        assert is_value(ValueArray(KIND_INT, [1]))
        assert not is_value(MutableArray(KIND_INT, [1]))
        assert not is_value(object())


class TestClinitSemantics:
    def test_cross_class_static_dependency(self):
        # Static initializers run in class-declaration order; a static
        # referring to a later class's static sees its default.
        from repro.backends.bytecode import Interpreter, compile_module
        from repro.ir import build_ir
        from repro.lime import analyze

        source = """
        class A { static int x = 10; }
        class B { static int y = A.x + 1; }
        class T { static int m() { return B.y; } }
        """
        module = build_ir(analyze(source))
        interp = Interpreter(compile_module(module))
        assert interp.call("T.m", []) == 11
