"""Tests for the repro.obs tracing subsystem and the options API.

Covers the null-tracer fast path, span nesting and attribute integrity
across a threaded-scheduler run, Chrome trace-event export round-trips,
the ``compile_program`` deprecation shim, ``RuntimeConfig`` validation
and ``with_overrides``, and the substitution-policy directives
defensive copy.
"""

import json

import pytest

from tests.lime_sources import FIGURE1
from repro.apps import SUITE
from repro.compiler import CompileOptions, compile_program, compile_report
from repro.errors import ConfigurationError, TraceExportError
from repro.obs import (
    NULL_TRACER,
    Counters,
    Tracer,
    render_span_tree,
    to_chrome_trace,
    to_json_lines,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.export import span_to_event
from repro.obs.tracer import _NULL_SPAN
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy


def traced_run(app="bitflip", scheduler="threaded"):
    """Compile and run one suite app with a shared tracer."""
    tracer = Tracer()
    compiled = compile_program(
        SUITE[app].source, options=CompileOptions(tracer=tracer)
    )
    entry, args = SUITE[app].default_args()
    outcome = Runtime(
        compiled, RuntimeConfig(scheduler=scheduler, tracer=tracer)
    ).run(entry, args)
    return tracer, outcome


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        a = NULL_TRACER.span("run.offload", device="gpu")
        b = NULL_TRACER.span("compile.frontend")
        assert a is b is _NULL_SPAN

    def test_records_nothing(self):
        with NULL_TRACER.span("x", items=3) as span:
            span.set(more=True)
        NULL_TRACER.counters.add("offload.map.taken")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.counters.snapshot() == {}
        assert NULL_TRACER.current() is None
        assert not NULL_TRACER.enabled

    def test_default_compile_and_run_stay_silent(self):
        compiled = compile_program(FIGURE1)
        assert compiled.tracer is NULL_TRACER
        entry, args = SUITE["bitflip"].default_args()
        outcome = Runtime(compiled).run(entry, args)
        assert outcome.trace is None
        assert len(NULL_TRACER) == 0


class TestCompileSpans:
    def test_phase_spans_nest_under_compile(self):
        tracer = Tracer()
        compile_program(FIGURE1, options=CompileOptions(tracer=tracer))
        (root,) = tracer.find("compile")
        names = {s.name for s in tracer.children_of(root)}
        assert {
            "compile.frontend",
            "compile.ir",
            "compile.backend.bytecode",
            "compile.backend.opencl",
            "compile.backend.verilog",
        } <= names

    def test_backend_spans_carry_kernel_children(self):
        tracer = Tracer()
        compile_program(
            SUITE["saxpy"].source, options=CompileOptions(tracer=tracer)
        )
        kernels = tracer.find("compile.backend.opencl.kernel")
        assert kernels
        assert all("kind" in s.attributes for s in kernels)
        (verilog,) = tracer.find("compile.backend.verilog")
        modules = tracer.children_of(verilog)
        assert all("fmax_hz" in m.attributes for m in modules)

    def test_compile_report_appends_span_tree(self):
        tracer = Tracer()
        result = compile_program(FIGURE1, options=CompileOptions(tracer=tracer))
        report = compile_report(result, trace=True)
        assert "compile.frontend" in report
        # Without trace= the report is unchanged.
        assert "compile.frontend" not in compile_report(result)


class TestRuntimeSpans:
    def test_threaded_run_nests_stage_spans(self):
        tracer, outcome = traced_run("bitflip", scheduler="threaded")
        assert outcome.trace is tracer
        (run_root,) = tracer.find("run")
        (graph,) = tracer.find("run.graph")
        stages = tracer.find("run.graph.stage")
        # Worker threads nest under the graph span via explicit parent.
        assert stages and all(s.parent_id == graph.span_id for s in stages)
        assert {s.attributes["task_id"] for s in stages}
        assert all("device" in s.attributes for s in stages)
        assert all(s.finished and s.duration_us >= 0 for s in tracer.spans)

    def test_sequential_run_equivalent_spans(self):
        tracer, _ = traced_run("bitflip", scheduler="sequential")
        stages = tracer.find("run.graph.stage")
        assert stages
        assert all(
            s.attributes["scheduler"] == "sequential" for s in stages
        )

    def test_offload_and_marshal_spans(self):
        tracer, _ = traced_run("saxpy")
        offloads = tracer.find("run.offload")
        assert offloads
        marshals = tracer.find_prefix("run.marshal.")
        assert marshals
        offload_ids = {s.span_id for s in offloads}
        assert any(m.parent_id in offload_ids for m in marshals)
        assert all(m.attributes["bytes"] > 0 for m in marshals)
        assert tracer.counters.get("offload.map.taken") >= 1

    def test_substitution_decision_spans(self):
        tracer, _ = traced_run("bitflip")
        subs = tracer.find("run.substitution")
        assert subs
        assert any(s.attributes.get("kind") == "graph" for s in subs)
        counters = tracer.counters.snapshot()
        assert counters.get("substitution.candidates", 0) >= 1


class TestCounters:
    def test_add_and_snapshot_sorted(self):
        counters = Counters()
        counters.add("b")
        counters.add("a", 2)
        counters.add("b", 3)
        assert counters.get("b") == 4
        assert list(counters.snapshot()) == ["a", "b"]

    def test_thread_safety(self):
        import threading

        counters = Counters()

        def bump():
            for _ in range(1000):
                counters.add("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("n") == 4000


class TestExport:
    def test_chrome_trace_round_trip(self, tmp_path):
        tracer, _ = traced_run("bitflip")
        path = tmp_path / "bitflip.trace.json"
        payload = write_chrome_trace(tracer, str(path))
        assert validate_trace_events(payload) == []
        loaded = validate_trace_file(str(path))
        names = {e["name"] for e in loaded["traceEvents"]}
        assert {"compile", "run", "run.graph.stage"} <= names
        x_events = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        ids = {e["args"]["span_id"] for e in x_events}
        for event in x_events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in ids
        assert loaded["otherData"]["counters"]

    def test_thread_metadata_events(self):
        tracer, _ = traced_run("bitflip")
        payload = to_chrome_trace(tracer, process_name="test-proc")
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name"
            and e["args"]["name"] == "test-proc"
            for e in meta
        )
        tids = {e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        named = {e["tid"] for e in meta if e["name"] == "thread_name"}
        assert tids <= named

    def test_json_lines_parse_and_mirror_spans(self):
        tracer, _ = traced_run("bitflip")
        lines = [
            json.loads(line)
            for line in to_json_lines(tracer).splitlines()
        ]
        spans = [o for o in lines if o["type"] == "span"]
        counters = [o for o in lines if o["type"] == "counter"]
        assert len(spans) == len(tracer.spans)
        assert counters
        assert all("name" in o and "duration_us" in o for o in spans)

    def test_validate_rejects_malformed(self, tmp_path):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": "nope"}) != []
        problems = validate_trace_events(
            {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}]}
        )
        assert any("phase" in p for p in problems)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TraceExportError):
            validate_trace_file(str(bad))

    def test_render_span_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("compile.frontend", classes=1):
                pass
        tree = render_span_tree(tracer)
        lines = tree.splitlines()
        assert lines[0].startswith("compile ")
        assert lines[1].startswith("  compile.frontend")
        assert "classes=1" in lines[1]


class TestSpanToEventEdgeCases:
    """Edge cases of the Chrome exporter's per-span conversion."""

    @staticmethod
    def _frozen_tracer():
        """A tracer whose clock only moves when told to."""
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0])
        return tracer, now

    def test_zero_duration_span_exports_valid_event(self):
        tracer, _ = self._frozen_tracer()
        with tracer.span("run.marshal.to_device"):
            pass  # clock never advances: a genuine zero-length span
        (span,) = tracer.spans
        assert span.duration_us == 0.0
        event = span_to_event(span)
        assert event["dur"] == 0.0
        assert event["ph"] == "X"
        assert validate_trace_events({"traceEvents": [event]}) == []

    def test_non_string_attribute_values_are_jsonable(self):
        tracer, now = self._frozen_tracer()

        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        with tracer.span(
            "run.offload",
            count=3,
            ratio=0.5,
            flag=True,
            nothing=None,
            shape=(4, 8),
            nested={"k": (1, 2), 5: "five"},
            opaque=Opaque(),
        ):
            now[0] += 10.0
        (span,) = tracer.spans
        event = span_to_event(span)
        args = event["args"]
        assert args["count"] == 3 and args["ratio"] == 0.5
        assert args["flag"] is True and args["nothing"] is None
        assert args["shape"] == [4, 8]  # tuples become JSON arrays
        assert args["nested"] == {"k": [1, 2], "5": "five"}  # keys coerced
        assert args["opaque"] == "<opaque thing>"
        json.dumps(event)  # the whole event must serialize

    def test_nested_parent_ordering_in_chrome_output(self):
        tracer, now = self._frozen_tracer()
        with tracer.span("run"):
            now[0] += 1.0
            with tracer.span("run.graph"):
                now[0] += 2.0
                with tracer.span("run.graph.stage", task_id="s0"):
                    now[0] += 3.0
            now[0] += 1.0
        payload = to_chrome_trace(tracer)
        x_events = {
            e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"
        }
        run = x_events["run"]
        graph = x_events["run.graph"]
        stage = x_events["run.graph.stage"]
        # Spans complete innermost-first, so children precede parents
        # in the event list; nesting is reconstructed from ts/dur.
        order = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert order.index("run.graph.stage") < order.index("run.graph")
        assert order.index("run.graph") < order.index("run")
        # Parent ids chain the tree explicitly too.
        assert stage["args"]["parent_id"] == graph["args"]["span_id"]
        assert graph["args"]["parent_id"] == run["args"]["span_id"]
        assert "parent_id" not in run["args"]
        # And each child's window sits inside its parent's.
        for child, parent in ((stage, graph), (graph, run)):
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_metrics_sections_in_exports(self):
        tracer, _ = traced_run("bitflip")
        payload = to_chrome_trace(tracer)
        other = payload["otherData"]
        assert other["histograms"]["marshal.crossing_us"]["count"] >= 2
        lines = [
            json.loads(line)
            for line in to_json_lines(tracer).splitlines()
        ]
        kinds = {o["type"] for o in lines}
        assert "histogram" in kinds


class TestOptionsAPI:
    def test_options_object(self):
        result = compile_program(
            FIGURE1, options=CompileOptions(enable_gpu=False)
        )
        assert result.gpu_backend is None
        assert result.compile_options.enable_gpu is False
        assert result.options["enable_gpu"] is False  # legacy view

    def test_options_hashable_and_replace(self):
        base = CompileOptions()
        piped = base.replace(fpga_pipelined=True)
        assert base != piped
        assert len({base, piped, CompileOptions()}) == 2

    def test_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match="enable_gpu"):
            result = compile_program(FIGURE1, enable_gpu=False)
        assert result.gpu_backend is None

    def test_legacy_kwargs_fold_onto_options(self):
        with pytest.warns(DeprecationWarning):
            result = compile_program(
                FIGURE1,
                options=CompileOptions(fpga_pipelined=True),
                enable_gpu=False,
            )
        assert result.gpu_backend is None
        assert result.compile_options.fpga_pipelined is True

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="enable_quantum"):
            compile_program(FIGURE1, enable_quantum=True)

    def test_no_deprecation_from_options_path(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_program(FIGURE1, options=CompileOptions())


class TestRuntimeConfigValidation:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError, match="scheduler"):
            RuntimeConfig(scheduler="fibers")

    def test_nonpositive_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="device_batch_size"):
            RuntimeConfig(device_batch_size=0)
        with pytest.raises(ConfigurationError, match="map_offload_min_items"):
            RuntimeConfig(map_offload_min_items=-1)
        with pytest.raises(ConfigurationError, match="fpga_max_clock_hz"):
            RuntimeConfig(fpga_max_clock_hz=0)

    def test_with_overrides_builder(self):
        base = RuntimeConfig()
        derived = base.with_overrides(scheduler="sequential")
        assert derived.scheduler == "sequential"
        assert base.scheduler == "threaded"  # original untouched
        with pytest.raises(ConfigurationError, match="no_such_knob"):
            base.with_overrides(no_such_knob=1)
        with pytest.raises(ConfigurationError):
            base.with_overrides(device_batch_size=-5)


class TestPolicyIsolation:
    def test_directives_defensively_copied_from_caller_dict(self):
        directives = {"t1": "bytecode"}
        policy = SubstitutionPolicy(directives=directives)
        directives["t2"] = "gpu"
        assert "t2" not in policy.directives

    def test_shared_policy_isolated_per_runtime(self):
        compiled = compile_program(FIGURE1)
        policy = SubstitutionPolicy()
        rt_a = Runtime(compiled, RuntimeConfig(policy=policy))
        rt_b = Runtime(compiled, RuntimeConfig(policy=policy))
        rt_a.policy.directives["Bitflip.flip"] = "bytecode"
        assert "Bitflip.flip" not in rt_b.policy.directives
        assert "Bitflip.flip" not in policy.directives
