"""Tests for the GPU backend: eligibility, OpenCL codegen, artifacts."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY
from repro.backends.opencl import compile_gpu, exclusion_reasons
from repro.ir import build_ir
from repro.lime import analyze


def module_for(source):
    return build_ir(analyze(source))


class TestEligibility:
    def test_pure_method_eligible(self):
        module = module_for(SAXPY)
        assert exclusion_reasons(module, "Saxpy.axpy") == []

    def test_global_method_ineligible(self):
        source = "class T { static int f(int x) { return x; } }"
        module = module_for(source)
        reasons = exclusion_reasons(module, "T.f")
        assert any("pure" in r for r in reasons)

    def test_recursion_ineligible(self):
        source = (
            "class T { local static int f(int n) "
            "{ return n < 2 ? n : f(n - 1) + f(n - 2); } }"
        )
        module = module_for(source)
        reasons = exclusion_reasons(module, "T.f")
        assert any("recursion" in r.lower() for r in reasons)

    def test_allocation_ineligible(self):
        source = (
            "class T { local static int f(int n) "
            "{ int[] a = new int[n]; return a[0]; } }"
        )
        module = module_for(source)
        # allocation also breaks purity? No: local arrays are fine for
        # purity but not for the GPU backend.
        reasons = exclusion_reasons(module, "T.f")
        assert any("allocation" in r for r in reasons)

    def test_object_types_ineligible(self):
        source = """
        value class V { int x; V(int x0) { this.x = x0; } }
        class T {
            local static int f(int n) { return new V(n).x; }
        }
        """
        module = module_for(source)
        reasons = exclusion_reasons(module, "T.f")
        assert any("object" in r for r in reasons)

    def test_transitive_callee_checked(self):
        source = """
        class T {
            local static int helper(int n) {
                int[] a = new int[n];
                return a[0];
            }
            local static int f(int n) { return helper(n); }
        }
        """
        module = module_for(source)
        reasons = exclusion_reasons(module, "T.f")
        assert any("helper" in r for r in reasons)


class TestCodegen:
    def test_saxpy_map_kernel_source(self):
        module = module_for(SAXPY)
        backend = compile_gpu(module)
        kernels = {a.manifest.artifact_id: a for a in backend.artifacts}
        art = kernels["gpu:map:Saxpy.axpy"]
        assert "__kernel void map_Saxpy_axpy" in art.text
        assert "__global const float* in0" in art.text
        assert "__global const float* in1" in art.text
        assert "get_global_id(0)" in art.text
        assert "2.5f" in art.text

    def test_reduce_kernel_source(self):
        module = module_for(SAXPY)
        backend = compile_gpu(module)
        kernels = {a.manifest.artifact_id: a for a in backend.artifacts}
        art = kernels["gpu:reduce:Saxpy.add"]
        assert "__kernel void reduce_Saxpy_add" in art.text
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in art.text
        assert "__local float* scratch" in art.text

    def test_filter_kernel_for_figure1(self):
        module = module_for(FIGURE1)
        backend = compile_gpu(module)
        filters = [
            a
            for a in backend.artifacts
            if a.payload.kind == "filter"
        ]
        assert len(filters) == 1
        art = filters[0]
        assert "uchar" in art.text  # bit maps to uchar
        assert "Bitflip_flip" in art.text
        # The artifact is labeled with the stage's unique task id.
        assert art.manifest.task_ids[0].endswith("Bitflip.flip")

    def test_double_kernel_enables_fp64(self):
        source = (
            "class T { local static double f(double x) "
            "{ return Math.sqrt(x); } "
            "static double[[]] m(double[[]] xs) { return T @ f(xs); } }"
        )
        backend = compile_gpu(module_for(source))
        art = backend.artifacts[0]
        assert "cl_khr_fp64" in art.text
        assert "sqrt(" in art.text

    def test_float_kernel_no_fp64_pragma(self):
        backend = compile_gpu(module_for(SAXPY))
        art = [
            a
            for a in backend.artifacts
            if a.manifest.artifact_id == "gpu:map:Saxpy.axpy"
        ][0]
        assert "cl_khr_fp64" not in art.text

    def test_device_function_emitted_before_kernel(self):
        source = """
        class T {
            local static float sq(float x) { return x * x; }
            local static float f(float x) { return sq(x) + 1.0f; }
            static float[[]] m(float[[]] xs) { return T @ f(xs); }
        }
        """
        backend = compile_gpu(module_for(source))
        text = backend.artifacts[0].text
        assert text.index("static float T_sq") < text.index(
            "static float T_f"
        )
        assert text.index("static float T_f") < text.index("__kernel")


class TestFusion:
    SOURCE = """
    class P {
        local static int inc(int x) { return x + 1; }
        local static int dbl(int x) { return x * 2; }
        static void m(int[[]] xs, int[] out) {
            var t = xs.source(1) => ([ task inc => task dbl ]) => out.sink();
            t.finish();
        }
    }
    """

    def test_fused_artifact_produced(self):
        backend = compile_gpu(module_for(self.SOURCE))
        sizes = sorted(
            len(a.manifest.task_ids)
            for a in backend.artifacts
            if a.payload.kind == "filter"
        )
        # Two per-stage artifacts plus one fused two-stage artifact.
        assert sizes == [1, 1, 2]

    def test_fused_kernel_chains_methods(self):
        backend = compile_gpu(module_for(self.SOURCE))
        fused = [
            a
            for a in backend.artifacts
            if len(a.manifest.task_ids) == 2
        ][0]
        assert "P_dbl(P_inc(in[gid]))" in fused.text


class TestExclusionRecords:
    def test_ineligible_relocatable_stage_recorded(self):
        source = """
        class T {
            local static int f(int n) {
                int[] a = new int[4];
                a[0] = n;
                return a[0];
            }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        backend = compile_gpu(module_for(source))
        assert backend.artifacts == []
        assert len(backend.exclusions) == 1
        assert "allocation" in backend.exclusions[0].reason

    def test_non_relocatable_stage_not_compiled(self):
        source = """
        class T {
            local static int f(int x) { return x + 1; }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => task f => out.sink();
                t.finish();
            }
        }
        """
        backend = compile_gpu(module_for(source))
        filters = [a for a in backend.artifacts if a.payload.kind == "filter"]
        assert filters == []
