"""Focused unit tests for the optimizer helpers and operator
semantics helpers shared between backends."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backends.bytecode.ops import (
    apply_binary,
    apply_cast,
    apply_math,
    apply_unary,
    java_idiv,
    java_irem,
    to_float32,
    wrap_int,
    wrap_long,
)
from repro.ir.optimizations import fold_binary
from repro.lime import types as ty


class TestWrapping:
    @given(st.integers(-(2**40), 2**40))
    def test_wrap_int_range(self, x):
        wrapped = wrap_int(x)
        assert -(2**31) <= wrapped < 2**31
        assert (wrapped - x) % (2**32) == 0

    @given(st.integers(-(2**70), 2**70))
    def test_wrap_long_range(self, x):
        wrapped = wrap_long(x)
        assert -(2**63) <= wrapped < 2**63
        assert (wrapped - x) % (2**64) == 0

    def test_identity_in_range(self):
        for x in (0, 1, -1, 2**31 - 1, -(2**31)):
            assert wrap_int(x) == x


class TestJavaDivision:
    @given(
        st.integers(-1000, 1000),
        st.integers(-1000, 1000).filter(lambda x: x != 0),
    )
    def test_idiv_truncates_toward_zero(self, a, b):
        assert java_idiv(a, b) == int(a / b)

    @given(
        st.integers(-1000, 1000),
        st.integers(-1000, 1000).filter(lambda x: x != 0),
    )
    def test_rem_sign_follows_dividend(self, a, b):
        r = java_irem(a, b)
        assert a == java_idiv(a, b) * b + r
        if r != 0:
            assert (r < 0) == (a < 0)


class TestFloat32:
    def test_roundtrip_exact_for_representable(self):
        for x in (0.0, 1.0, 0.5, -2.25, 1e10):
            assert to_float32(x) == x

    def test_truncates_precision(self):
        assert to_float32(0.1) != 0.1

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_idempotent(self, x):
        assert to_float32(to_float32(x)) == to_float32(x)


class TestApplyHelpers:
    def test_string_concat(self):
        assert apply_binary("+", "n=", 3, "String") == "n=3"
        assert apply_binary("+", 2.5, "!", "String") == "2.5!"
        assert apply_binary("+", True, "", "String") == "true"

    def test_shift_masks_amount(self):
        # Java masks shift amounts to 5 bits for int.
        assert apply_binary("<<", 1, 33, "int") == 2

    def test_unary_not(self):
        assert apply_unary("!", True, "boolean") is False

    def test_cast_double_to_int(self):
        assert apply_cast(-7.9, "int") == -7

    def test_math_abs_int_stays_int(self):
        assert apply_math("Math.abs", [-5], "int") == 5
        assert isinstance(apply_math("Math.abs", [-5], "int"), int)

    def test_math_pow(self):
        assert apply_math("Math.pow", [2.0, 10.0]) == 1024.0

    def test_math_floor_ceil(self):
        assert apply_math("Math.floor", [2.7]) == 2.0
        assert apply_math("Math.ceil", [2.1]) == 3.0


class TestFoldBinary:
    def test_folds_basic(self):
        ok, value = fold_binary("+", 2, 3, ty.INT)
        assert ok and value == 5

    def test_refuses_div_zero(self):
        ok, _ = fold_binary("/", 1, 0, ty.INT)
        assert not ok
        ok, _ = fold_binary("%", 1, 0, ty.INT)
        assert not ok

    def test_wraps_int(self):
        ok, value = fold_binary("*", 2**30, 4, ty.INT)
        assert ok and value == 0

    def test_comparison_results_boolean(self):
        ok, value = fold_binary("<=", 3, 3, ty.BOOLEAN)
        assert ok and value is True

    @given(
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
        st.integers(-10000, 10000),
        st.integers(-10000, 10000),
    )
    def test_fold_matches_runtime_semantics(self, op, a, b):
        ok, folded = fold_binary(op, a, b, ty.INT)
        assert ok
        assert folded == apply_binary(op, a, b, "int")

    @given(
        st.integers(-10000, 10000),
        st.integers(-10000, 10000).filter(lambda x: x != 0),
    )
    def test_fold_division_matches_runtime(self, a, b):
        ok, folded = fold_binary("/", a, b, ty.INT)
        assert ok
        assert folded == apply_binary("/", a, b, "int")
