"""Pretty-printer round-trip tests: parse -> pretty -> parse must be
structurally stable, and the reprinted source must compile and behave
identically."""

import pytest

from tests.lime_sources import FIGURE1, SAXPY, USER_ENUM
from repro.apps import SUITE
from repro.compiler import compile_program
from repro.lime import parse
from repro.lime.printer import pretty
from repro.runtime import Runtime


def roundtrip(source: str) -> "tuple[str, str]":
    first = pretty(parse(source))
    second = pretty(parse(first))
    return first, second


class TestIdempotence:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_suite_roundtrips(self, name):
        first, second = roundtrip(SUITE[name].source)
        assert first == second, name

    def test_figure1_roundtrips(self):
        first, second = roundtrip(FIGURE1)
        assert first == second

    def test_enum_roundtrips(self):
        first, second = roundtrip(USER_ENUM)
        assert first == second

    def test_saxpy_roundtrips(self):
        first, second = roundtrip(SAXPY)
        assert first == second


class TestReprintedProgramsBehave:
    def test_reprinted_figure1_runs_identically(self):
        from repro.values import KIND_BIT, ValueArray, parse_bit_literal

        reprinted = pretty(parse(FIGURE1))
        original_rt = Runtime(compile_program(FIGURE1))
        reprint_rt = Runtime(compile_program(reprinted))
        bits = ValueArray(KIND_BIT, parse_bit_literal("110010111"))
        assert original_rt.call(
            "Bitflip.taskFlip", [bits]
        ) == reprint_rt.call("Bitflip.taskFlip", [bits])

    @pytest.mark.parametrize(
        "name", ["crc8", "black_scholes", "running_sum", "hybrid"]
    )
    def test_reprinted_apps_run_identically(self, name):
        entry, args = SUITE[name].default_args()
        reprinted = pretty(parse(SUITE[name].source))
        original = Runtime(compile_program(SUITE[name].source)).call(
            entry, args
        )
        again = Runtime(compile_program(reprinted)).call(entry, args)
        if isinstance(original, float):
            assert again == pytest.approx(original)
        else:
            assert again == original


class TestRenderingDetails:
    def test_bit_literal_preserved(self):
        source = "class T { static bit[[]] m() { return 110010111b; } }"
        text = pretty(parse(source))
        assert "110010111b" in text

    def test_float_suffix_preserved(self):
        source = "class T { static float m() { return 2.5f; } }"
        assert "2.5f" in pretty(parse(source))

    def test_long_suffix_preserved(self):
        source = "class T { static long m() { return 42L; } }"
        assert "42L" in pretty(parse(source))

    def test_generic_sink_call(self):
        text = pretty(parse(FIGURE1))
        assert ".<bit>sink()" in text

    def test_relocation_brackets(self):
        text = pretty(parse(FIGURE1))
        assert "([ task flip ])" in text

    def test_operator_method(self):
        text = pretty(parse(USER_ENUM))
        assert "color ~ this {" in text

    def test_string_escapes(self):
        source = r'class T { static void m() { println("a\nb\"c"); } }'
        text = pretty(parse(source))
        assert r'"a\nb\"c"' in text
        # And it reparses to the same string.
        again = pretty(parse(text))
        assert again == text


class TestPrinterProperty:
    def test_random_expression_roundtrip(self):
        from hypothesis import given, settings
        from tests.test_properties import int_exprs

        @settings(max_examples=40, deadline=None)
        @given(int_exprs())
        def check(expr_text):
            source = (
                "class P { local static int f(int a, int b, int c) "
                f"{{ return {expr_text}; }} }}"
            )
            first = pretty(parse(source))
            second = pretty(parse(first))
            assert first == second

        check()
