"""Tests for the repro.obs.profile profiler.

Covers critical-path exactness (segments partition the root span's
window), per-stage utilization rows for both graph and map-flavor apps,
queue-occupancy extraction, the repro.profile/1 schema validator, and
the deterministic baseline regression comparator.
"""

import json

import pytest

from repro.apps import SUITE
from repro.compiler import CompileOptions, compile_program
from repro.obs import (
    PROFILE_SCHEMA,
    Tracer,
    build_profile,
    compare_profiles,
    critical_path,
    render_profile,
    validate_profile,
    validate_profile_file,
)
from repro.obs.profile import find_run_root
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy


def profiled_run(app="bitflip", scheduler="threaded", cpu_only=False):
    tracer = Tracer()
    compiled = compile_program(
        SUITE[app].source, options=CompileOptions(tracer=tracer)
    )
    entry, args = SUITE[app].default_args()
    config = RuntimeConfig(
        policy=SubstitutionPolicy(use_accelerators=not cpu_only),
        scheduler=scheduler,
        tracer=tracer,
    )
    outcome = Runtime(compiled, config).run(entry, args)
    report = build_profile(
        tracer,
        ledger=outcome.ledger,
        app=app,
        entry=entry,
        scheduler=scheduler,
    )
    return tracer, report


@pytest.fixture(scope="module")
def bitflip_report():
    return profiled_run("bitflip", "threaded")


@pytest.fixture(scope="module")
def mandelbrot_report():
    return profiled_run("mandelbrot", "threaded")


class TestCriticalPath:
    def test_segments_partition_the_root_window(self, bitflip_report):
        tracer, _ = bitflip_report
        segments, root = critical_path(tracer)
        assert root is not None and root.name == "run"
        total = sum(seg.duration_us for seg in segments)
        assert total == pytest.approx(root.duration_us, rel=1e-6)

    def test_segments_are_ordered_and_disjoint(self, bitflip_report):
        tracer, _ = bitflip_report
        segments, _ = critical_path(tracer)
        cursor = None
        for seg in segments:
            assert seg.duration_us >= 0
            if cursor is not None:
                assert seg.start_us >= cursor - 1e-6
            cursor = seg.start_us + seg.duration_us

    def test_stage_spans_appear_on_graph_app_path(self, bitflip_report):
        tracer, _ = bitflip_report
        segments, _ = critical_path(tracer)
        names = {seg.name for seg in segments}
        assert "run.graph.stage" in names

    def test_empty_tracer_has_no_path(self):
        segments, root = critical_path(Tracer())
        assert segments == [] and root is None

    def test_find_run_root_prefers_run_span(self, bitflip_report):
        tracer, _ = bitflip_report
        assert find_run_root(tracer).name == "run"


class TestProfileReport:
    def test_schema_stamped(self, bitflip_report, mandelbrot_report):
        for _, report in (bitflip_report, mandelbrot_report):
            assert report.to_json()["schema"] == PROFILE_SCHEMA

    def test_validates_clean(self, bitflip_report, mandelbrot_report):
        for _, report in (bitflip_report, mandelbrot_report):
            assert validate_profile(report.to_json()) == []

    def test_critical_path_within_5pct_of_wall(self, bitflip_report):
        _, report = bitflip_report
        critical = report.critical_path
        assert critical["wall_us"] > 0
        assert abs(critical["sum_us"] - critical["wall_us"]) <= (
            0.05 * critical["wall_us"]
        )
        assert critical["bottleneck"] is not None

    def test_stage_rows_graph_app(self, bitflip_report):
        _, report = bitflip_report
        kinds = {row["kind"] for row in report.stages}
        assert "stage" in kinds and "offload" in kinds
        for row in report.stages:
            assert 0.0 <= row["utilization"] <= 1.0
            assert row["span_us"] > 0
            assert "queue_wait_us" in row

    def test_stage_rows_map_app(self, mandelbrot_report):
        _, report = mandelbrot_report
        assert report.stages, "map app must still get offload rows"
        assert all(row["kind"] == "offload" for row in report.stages)

    def test_queue_stats_graph_app(self, bitflip_report):
        _, report = bitflip_report
        queues = report.to_json()["queues"]
        assert len(queues) >= 2
        for q in queues:
            assert "->" in q["edge"]
            assert q["samples"] >= 1
            assert q["max_depth"] >= 0
            assert q["producer_wait_us"] >= 0
            assert q["consumer_wait_us"] >= 0

    def test_queue_stats_empty_for_map_app(self, mandelbrot_report):
        _, report = mandelbrot_report
        assert report.to_json()["queues"] == []

    def test_breakdown_accounts_for_wall(self, bitflip_report):
        _, report = bitflip_report
        data = report.to_json()
        total = sum(data["breakdown_us"].values())
        assert total == pytest.approx(data["wall_us"], rel=0.05)
        assert data["breakdown_us"]["queue_wait"] > 0

    def test_simulated_section_from_ledger(self, bitflip_report):
        _, report = bitflip_report
        sim = report.to_json()["simulated"]
        assert sim["total_s"] > 0
        assert sim["graph_runs"] >= 1

    def test_dumps_round_trips(self, bitflip_report):
        _, report = bitflip_report
        assert json.loads(report.dumps()) == report.to_json()

    def test_render_sections(self, bitflip_report):
        _, report = bitflip_report
        text = report.render()
        for heading in (
            "per-task breakdown",
            "critical path",
            "queue occupancy",
            "bottleneck:",
        ):
            assert heading in text


class TestValidateProfile:
    def test_rejects_wrong_schema(self, bitflip_report):
        _, report = bitflip_report
        payload = dict(report.to_json(), schema="repro.profile/0")
        assert any("schema" in p for p in validate_profile(payload))

    def test_rejects_non_dict(self):
        assert validate_profile([1, 2]) != []

    def test_rejects_critical_path_drift(self, bitflip_report):
        _, report = bitflip_report
        payload = json.loads(report.dumps())
        payload["critical_path"]["segments"] = payload["critical_path"][
            "segments"
        ][:1]
        payload["critical_path"]["segments"][0]["duration_us"] = 1.0
        assert any(">5%" in p for p in validate_profile(payload))

    def test_rejects_missing_sections(self):
        assert validate_profile({"schema": PROFILE_SCHEMA, "wall_us": 1.0})

    def test_file_validator_raises_with_problems(
        self, tmp_path, bitflip_report
    ):
        _, report = bitflip_report
        good = tmp_path / "good.json"
        good.write_text(report.dumps())
        assert validate_profile_file(str(good))["schema"] == PROFILE_SCHEMA
        bad = tmp_path / "bad.json"
        payload = dict(report.to_json(), schema="nope")
        bad.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            validate_profile_file(str(bad))


class TestCompareProfiles:
    def test_identical_runs_do_not_regress(self):
        _, a = profiled_run("bitflip", "sequential")
        _, b = profiled_run("bitflip", "sequential")
        assert compare_profiles(a.to_json(), b.to_json()) == []

    def test_injected_slowdown_is_flagged(self):
        _, base = profiled_run("mandelbrot", "threaded")
        _, slow = profiled_run("mandelbrot", "threaded", cpu_only=True)
        regressions = compare_profiles(slow.to_json(), base.to_json())
        assert any("simulated.total_s" in r for r in regressions)

    def test_improvement_is_not_flagged(self):
        _, base = profiled_run("mandelbrot", "threaded", cpu_only=True)
        _, fast = profiled_run("mandelbrot", "threaded")
        assert compare_profiles(fast.to_json(), base.to_json()) == []

    def test_threshold_is_respected(self, bitflip_report):
        _, report = bitflip_report
        current = json.loads(report.dumps())
        current["simulated"]["total_s"] *= 1.08
        payload = report.to_json()
        assert compare_profiles(current, payload, threshold=0.10) == []
        assert compare_profiles(current, payload, threshold=0.05) != []

    def test_render_profile_handles_minimal_payload(self):
        text = render_profile(
            {
                "schema": PROFILE_SCHEMA,
                "app": "x",
                "entry": "X.y",
                "scheduler": "sequential",
                "wall_us": 0.0,
                "simulated": {},
                "stages": [],
                "breakdown_us": {},
                "queues": [],
                "critical_path": {
                    "wall_us": 0.0,
                    "sum_us": 0.0,
                    "coverage": 0.0,
                    "segments": [],
                    "bottleneck": None,
                },
                "histograms": {},
                "gauges": {},
                "counters": {},
            }
        )
        assert "profile: x" in text
