"""Property-based cross-layer invariants.

The deepest guarantees of the reproduction, checked over randomized
programs and inputs:

* shallow optimizations never change observable results;
* the FPGA datapath (symbolic if-conversion + RTL evaluation) computes
  exactly what the bytecode interpreter computes;
* GPU filter execution is bit-identical to the CPU path;
* the threaded and sequential schedulers agree;
* value semantics (immutability, structural equality) hold under
  arbitrary construction orders.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.bytecode import Interpreter, compile_module
from repro.ir import build_ir
from repro.lime import analyze
from repro.values import KIND_INT, ValueArray

# ---------------------------------------------------------------------------
# Random integer expression programs
# ---------------------------------------------------------------------------

_NAMES = ("a", "b", "c")


@st.composite
def int_exprs(draw, depth=0):
    """A random Lime int expression over parameters a, b, c."""
    if depth >= 4 or draw(st.booleans()):
        leaf = draw(
            st.one_of(
                st.sampled_from(_NAMES),
                st.integers(min_value=-50, max_value=50).map(
                    lambda v: f"({v})" if v < 0 else str(v)
                ),
            )
        )
        return leaf
    kind = draw(
        st.sampled_from(["+", "-", "*", "&", "|", "^", "min", "ternary", "shift"])
    )
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    if kind == "min":
        return f"Math.min({left}, {right})"
    if kind == "ternary":
        third = draw(int_exprs(depth=depth + 1))
        return f"(({left}) < ({right}) ? ({third}) : ({right}))"
    if kind == "shift":
        amount = draw(st.integers(min_value=0, max_value=8))
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"(({left}) {op} {amount})"
    return f"(({left}) {kind} ({right}))"


def _program_for(expr_text):
    return (
        "class P { local static int f(int a, int b, int c) "
        f"{{ return {expr_text}; }} }}"
    )


def _interp(source, optimized):
    module = build_ir(analyze(source), run_optimizations=optimized)
    return Interpreter(compile_module(module))


class TestOptimizationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(
        int_exprs(),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_optimized_matches_unoptimized(self, expr, a, b, c):
        source = _program_for(expr)
        plain = _interp(source, optimized=False)
        optimized = _interp(source, optimized=True)
        assert plain.call("P.f", [a, b, c]) == optimized.call(
            "P.f", [a, b, c]
        )

    @settings(max_examples=40, deadline=None)
    @given(int_exprs())
    def test_optimization_never_grows_code(self, expr):
        source = _program_for(expr)
        plain = _interp(source, optimized=False)
        optimized = _interp(source, optimized=True)
        assert len(optimized.program.functions["P.f"].code) <= len(
            plain.program.functions["P.f"].code
        )


class TestDatapathEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        int_exprs(),
        st.integers(-(2**20), 2**20),
        st.integers(-(2**20), 2**20),
        st.integers(-(2**20), 2**20),
    )
    def test_fpga_datapath_matches_interpreter(self, expr, a, b, c):
        from repro.backends.verilog.codegen import eval_datapath
        from repro.backends.verilog.datapath import DatapathBuilder
        from repro.errors import ExclusionNotice

        source = _program_for(expr)
        module = build_ir(analyze(source))
        try:
            datapath = DatapathBuilder(module).build("P.f")
        except ExclusionNotice:
            return  # legitimately unsynthesizable shapes are skipped
        interp = Interpreter(compile_module(module))
        expected = interp.call("P.f", [a, b, c])
        got = eval_datapath(datapath, {"a": a, "b": b, "c": c})
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
    def test_rtl_stream_matches_interpreter(self, items):
        """Full RTL simulation of a nontrivial filter vs bytecode."""
        from repro.backends.verilog import compile_fpga
        from repro.devices.fpga import FPGASimulator

        source = """
        class T {
            local static int f(int x) {
                int y = x * 3 - 7;
                if (y < 0) { y = -y; }
                return (y ^ (y >> 2)) + 1;
            }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        module = build_ir(analyze(source))
        interp = Interpreter(compile_module(module))
        expected = [interp.call("T.f", [x]) for x in items]
        bundle = compile_fpga(module).artifacts[0].payload
        result = FPGASimulator().run_stream(
            bundle.elaborate(), [bundle.encode(x) for x in items]
        )
        assert [bundle.decode(r) for r in result.outputs] == expected


class TestDeviceEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(-(2**15), 2**15), min_size=1, max_size=64
        )
    )
    def test_gpu_filter_matches_cpu(self, xs):
        from repro.apps import compile_app
        from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

        compiled = compile_app("gray_pipeline")
        arr = ValueArray(KIND_INT, xs)
        gpu = Runtime(compiled).call("GrayCoder.pipeline", [arr])
        cpu = Runtime(
            compiled,
            RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
        ).call("GrayCoder.pipeline", [arr])
        assert gpu == cpu

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=48))
    def test_schedulers_agree(self, xs):
        from repro.apps import compile_app
        from repro.runtime import Runtime, RuntimeConfig

        compiled = compile_app("crc8")
        arr = ValueArray(KIND_INT, xs)
        threaded = Runtime(
            compiled, RuntimeConfig(scheduler="threaded")
        ).call("Crc8.checksums", [arr])
        sequential = Runtime(
            compiled, RuntimeConfig(scheduler="sequential")
        ).call("Crc8.checksums", [arr])
        assert threaded == sequential


class TestValueSemantics:
    @given(st.lists(st.integers(-100, 100)))
    def test_freeze_thaw_roundtrip(self, xs):
        from repro.values import MutableArray

        mutable = MutableArray(KIND_INT, xs)
        assert mutable.freeze().thaw().freeze() == mutable.freeze()

    @given(st.lists(st.integers(-100, 100), min_size=1))
    def test_value_array_hash_consistency(self, xs):
        a = ValueArray(KIND_INT, xs)
        b = ValueArray(KIND_INT, list(xs))
        assert a == b and hash(a) == hash(b)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_bit_pack_density_invariant(self, bits_in):
        from repro.values import Bit, serialize
        from repro.values.base import KIND_BIT

        arr = ValueArray(KIND_BIT, [Bit(b) for b in bits_in])
        wire = serialize(arr)
        # tag + elem + u32 + ceil(n/8) payload bytes.
        assert len(wire) == 1 + 1 + 4 + (len(bits_in) + 7) // 8
