"""Crash/restart differential tests for the journaled co-execution
service (docs/RECOVERY.md).

The contract under test: a run crashed at a seeded point and recovered
— from the journal alone or from a stage checkpoint — is bit-identical
in value, output, simulated seconds, and fault log (all folded into
the outcome digest) to the same run never interrupted. Plus: chaos
soak (three successive crashes on one workload converge), idempotent
completed-job dedup (no re-execution), unrecoverable-args handling,
and rejected (submitted-but-never-admitted) jobs."""

import pytest

from repro.apps import SUITE, compile_app, workloads
from repro.errors import ProcessCrash
from repro.obs import Tracer
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    Runtime,
    RuntimeConfig,
    fault_log_payload,
)
from repro.service import (
    COMPLETED,
    FAILED,
    CoExecutionService,
    Job,
    JobJournal,
    ServiceConfig,
    outcome_digest,
    run_recovery_driver,
    validate_recover_report,
)
from repro.service.journal import RecoveredOutcome, canonical_args

ALL_APPS = sorted(SUITE)
BATCH = 8


def _crash_plan(crash_calls=(1,), times=1, seed=5):
    return FaultPlan(
        [
            FaultSpec(
                site="device",
                error="crash",
                target="*",
                on_calls=tuple(crash_calls),
                times=times,
            )
        ],
        seed=seed,
    )


def _service(journal_dir, plan, scheduler, interval=1):
    return CoExecutionService(
        ServiceConfig(
            runtime=RuntimeConfig(
                scheduler=scheduler,
                fault_plan=plan,
                batch_size=BATCH,
                device_batch_size=BATCH,
                stage_timeout_s=(
                    10.0 if scheduler == "threaded" else None
                ),
            ),
            journal_dir=str(journal_dir),
            checkpoint_interval=interval,
        )
    )


def _baseline_digest(app, entry, args, plan, scheduler):
    """The uninterrupted run: same plan, every crash suppressed (the
    suppression burns the same fire budget, so fault logs align)."""
    injector = FaultInjector(plan)
    injector.suppress_all_crashes = True
    outcome = Runtime(
        compile_app(app),
        RuntimeConfig(
            scheduler=scheduler,
            fault_plan=injector,
            batch_size=BATCH,
            device_batch_size=BATCH,
        ),
    ).run(entry, args)
    return outcome_digest(
        outcome.value,
        outcome.output,
        outcome.ledger.total_s,
        fault_log_payload(injector.log),
    )


def _run_to_convergence(journal_dir, app, entry, args, plan, scheduler,
                        interval=1, use_checkpoints=True,
                        max_restarts=8):
    """Submit one job, crash-and-restart until a pass completes.
    Returns (job_id, final status row, last recover report,
    restarts)."""
    job_id = None
    restarts = 0
    while True:
        service = _service(journal_dir, plan, scheduler, interval)
        try:
            report = service.recover(use_checkpoints=use_checkpoints)
            if job_id is None or not service.has_job(job_id):
                job_id = service.submit(
                    SUITE[app].source,
                    entry,
                    args,
                    tenant="t0",
                    app=app,
                    filename=f"<{app}.lime>",
                )
            service.drain()
        except ProcessCrash:
            restarts += 1
            assert restarts <= max_restarts, (
                f"{app}/{scheduler}: no convergence after "
                f"{max_restarts} restarts"
            )
            continue
        return job_id, service.status(job_id), report, restarts


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
@pytest.mark.parametrize("app", ALL_APPS)
def test_crash_recover_bit_identical(tmp_path, app, scheduler):
    """Every suite app x both schedulers: crash at the first device
    consult, recover from the journal, digest equals the uninterrupted
    baseline. Host-only apps never consult a device — they complete
    uninterrupted, which must also match."""
    entry, args = workloads.small_args(app)
    args = canonical_args(args)
    plan = _crash_plan(crash_calls=(1,))
    job_id, row, report, restarts = _run_to_convergence(
        tmp_path / "journal", app, entry, args, plan, scheduler
    )
    assert validate_recover_report(report) == []
    assert row["state"] == COMPLETED
    assert row["digest"] == _baseline_digest(
        app, entry, args, plan, scheduler
    )
    assert restarts <= 1


@pytest.mark.parametrize(
    "app", ["bitflip", "gray_pipeline", "parity", "crc8"]
)
def test_checkpoint_resume_bit_identical(tmp_path, app):
    """Stream apps under the sequential scheduler: crash at the third
    device consult with frames persisted every decision point, so the
    recovery genuinely resumes from a checkpoint — and still matches
    the uninterrupted digest."""
    entry, args = workloads.small_args(app)
    args = canonical_args(args)
    plan = _crash_plan(crash_calls=(3,))
    job_id, row, report, restarts = _run_to_convergence(
        tmp_path / "journal", app, entry, args, plan, "sequential",
        interval=1,
    )
    assert restarts == 1
    modes = [r["mode"] for r in report["recovered"]]
    assert modes == ["checkpoint"], modes
    assert row["state"] == COMPLETED
    assert row["digest"] == _baseline_digest(
        app, entry, args, plan, "sequential"
    )


def test_checkpoint_disabled_recovers_from_scratch(tmp_path):
    entry, args = workloads.small_args("gray_pipeline")
    args = canonical_args(args)
    plan = _crash_plan(crash_calls=(3,))
    job_id, row, report, restarts = _run_to_convergence(
        tmp_path / "journal", "gray_pipeline", entry, args, plan,
        "sequential", interval=1, use_checkpoints=False,
    )
    assert restarts == 1
    assert [r["mode"] for r in report["recovered"]] == ["scratch"]
    assert row["digest"] == _baseline_digest(
        "gray_pipeline", entry, args, plan, "sequential"
    )


def test_chaos_soak_three_crashes_one_workload(tmp_path):
    """Three successive crashes on ONE workload (calls 2, 4, 6 of the
    same job) converge: each restart suppresses the journaled crash
    and advances to the next, and the final digest still matches the
    crash-free baseline."""
    app = "gray_pipeline"
    entry, args = workloads.small_args(app)
    args = canonical_args(args)
    plan = _crash_plan(crash_calls=(2, 4, 6), times=3)
    job_id, row, report, restarts = _run_to_convergence(
        tmp_path / "journal", app, entry, args, plan, "sequential"
    )
    assert restarts == 3
    assert row["state"] == COMPLETED
    assert row["digest"] == _baseline_digest(
        app, entry, args, plan, "sequential"
    )
    final = report["recovered"][-1]
    assert final["crashes_suppressed"] >= 2


@pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
def test_recovery_driver_converges(tmp_path, scheduler):
    """The multi-job chaos driver: seeded crash schedule across 6
    jobs, restart loop, every digest verified inside the driver."""
    report = run_recovery_driver(
        str(tmp_path / "journal"), jobs=6, scheduler=scheduler, seed=1,
        crash_call=3,
    )
    assert validate_recover_report(report) == []
    driver = report["driver"]
    assert driver["verified_jobs"] == 6
    assert driver["restarts"] >= 3
    if scheduler == "sequential":
        assert driver["checkpoint_resumes"] >= 1


class TestIdempotentDedup:
    def test_completed_jobs_never_rerun(self, tmp_path):
        journal_dir = tmp_path / "journal"
        service = _service(journal_dir, None, "sequential")
        entry, args = workloads.small_args("bitflip")
        job_id = service.submit(
            SUITE["bitflip"].source, entry, args, tenant="t0",
            app="bitflip",
        )
        service.drain()
        first = service.status(job_id)
        assert first["state"] == COMPLETED

        tracer = Tracer()
        reborn = CoExecutionService(
            ServiceConfig(
                runtime=RuntimeConfig(
                    scheduler="sequential", tracer=tracer
                ),
                journal_dir=str(journal_dir),
            )
        )
        report = reborn.recover()
        assert report["totals"]["deduped"] == 1
        assert report["totals"]["recovered"] == 0
        assert reborn.has_job(job_id)
        row = reborn.status(job_id)
        assert row["state"] == COMPLETED
        assert row["digest"] == first["digest"]
        outcome = reborn.result(job_id)
        assert isinstance(outcome, RecoveredOutcome)
        counters = tracer.counters.snapshot()
        assert counters.get("recover.dedup", 0) == 1
        # No execution happened in the reborn service: dedup is a
        # journal fold, not a re-run.
        assert counters.get("service.job.completed", 0) == 0

    def test_recover_twice_is_stable(self, tmp_path):
        journal_dir = tmp_path / "journal"
        service = _service(journal_dir, None, "sequential")
        entry, args = workloads.small_args("parity")
        job_id = service.submit(
            SUITE["parity"].source, entry, args, tenant="t0",
            app="parity",
        )
        service.drain()
        for _ in range(2):
            reborn = _service(journal_dir, None, "sequential")
            report = reborn.recover()
            assert report["totals"]["deduped"] == 1
            assert reborn.status(job_id)["state"] == COMPLETED


class TestJournalEdgeCases:
    def test_unrecoverable_args_fail_typed(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        job = Job(
            job_id="job-0001",
            tenant="t0",
            source=SUITE["bitflip"].source,
            entry="Bitflip.taskFlip",
            args=[object()],           # not wire-serializable
            app="bitflip",
        )
        journal.record_submitted(job)
        journal.record_admitted(job.job_id)
        journal.record_running(job.job_id)

        service = CoExecutionService(
            ServiceConfig(
                runtime=RuntimeConfig(scheduler="sequential"),
                journal_dir=str(tmp_path),
            )
        )
        report = service.recover()
        rows = [
            r for r in report["recovered"] if r["job_id"] == "job-0001"
        ]
        assert rows and rows[0]["mode"] == "unrecoverable"
        assert rows[0]["state"] == FAILED
        assert service.status("job-0001")["state"] == FAILED

    def test_submitted_without_admitted_is_rejected(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        job = Job(
            job_id="job-0001",
            tenant="t0",
            source=SUITE["bitflip"].source,
            entry="Bitflip.taskFlip",
            args=[7],
            app="bitflip",
        )
        journal.record_submitted(job)   # crash before admission

        service = CoExecutionService(
            ServiceConfig(
                runtime=RuntimeConfig(scheduler="sequential"),
                journal_dir=str(tmp_path),
            )
        )
        report = service.recover()
        assert report["totals"]["rejected"] == 1
        assert "job-0001" in report["rejected"]
        assert not service.has_job("job-0001")

    def test_new_job_ids_continue_past_journal(self, tmp_path):
        journal_dir = tmp_path / "journal"
        service = _service(journal_dir, None, "sequential")
        entry, args = workloads.small_args("bitflip")
        first = service.submit(
            SUITE["bitflip"].source, entry, args, tenant="t0",
            app="bitflip",
        )
        service.drain()

        reborn = _service(journal_dir, None, "sequential")
        reborn.recover()
        second = reborn.submit(
            SUITE["bitflip"].source, entry, args, tenant="t0",
            app="bitflip",
        )
        assert second != first
        assert int(second.split("-")[1]) > int(first.split("-")[1])
        reborn.drain()


def test_crash_poisons_service_api(tmp_path):
    """After a simulated crash the incarnation is dead: every later
    API call re-raises the crash, and the journal accepts no more
    writes (lost-writes semantics)."""
    entry, args = workloads.small_args("gray_pipeline")
    plan = _crash_plan(crash_calls=(1,))
    service = _service(tmp_path / "journal", plan, "sequential")
    with pytest.raises(ProcessCrash):
        service.submit(
            SUITE["gray_pipeline"].source, entry, args, tenant="t0",
            app="gray_pipeline",
        )
        service.drain()
    with pytest.raises(ProcessCrash):
        service.submit(
            SUITE["gray_pipeline"].source, entry, args, tenant="t0",
            app="gray_pipeline",
        )
    with pytest.raises(ProcessCrash):
        service.drain()
