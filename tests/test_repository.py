"""Tests for the on-disk artifact repository (Section 1's repository
form of artifact distribution)."""

import os

import pytest

from tests.lime_sources import FIGURE1
from repro.backends.repository import load_repository, save_repository
from repro.compiler import compile_program
from repro.errors import BackendError
from repro.runtime import Runtime
from repro.values import KIND_BIT, ValueArray, parse_bit_literal


class TestRoundTrip:
    def test_save_creates_index_and_files(self, tmp_path):
        compiled = compile_program(FIGURE1)
        index_path = save_repository(compiled.store, str(tmp_path))
        assert os.path.exists(index_path)
        names = os.listdir(tmp_path)
        assert any(n.endswith(".cl") for n in names)
        assert any(n.endswith(".v") for n in names)
        assert any(n.endswith(".payload") for n in names)

    def test_reload_preserves_manifests(self, tmp_path):
        compiled = compile_program(FIGURE1)
        save_repository(compiled.store, str(tmp_path))
        reloaded = load_repository(str(tmp_path))
        assert len(reloaded) == len(compiled.store)
        original_ids = {a.artifact_id for a in compiled.store.all()}
        assert {a.artifact_id for a in reloaded.all()} == original_ids

    def test_reload_preserves_exclusions(self, tmp_path):
        source = """
        class T {
            local static float f(float x) { return x + 1.0f; }
            static void m(float[[]] xs, float[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        compiled = compile_program(source)
        save_repository(compiled.store, str(tmp_path))
        reloaded = load_repository(str(tmp_path))
        assert len(reloaded.exclusions) == len(compiled.store.exclusions)
        assert reloaded.exclusions[0].reason

    def test_reloaded_store_executes(self, tmp_path):
        compiled = compile_program(FIGURE1)
        save_repository(compiled.store, str(tmp_path))
        compiled.store = load_repository(str(tmp_path))
        runtime = Runtime(compiled)
        stream = ValueArray(KIND_BIT, parse_bit_literal("110010111"))
        result = runtime.call("Bitflip.taskFlip", [stream])
        assert repr(result) == "001101000b"
        _, decisions = runtime.substitution_log[0]
        assert decisions  # substitution worked from reloaded artifacts

    def test_text_files_match(self, tmp_path):
        compiled = compile_program(FIGURE1)
        save_repository(compiled.store, str(tmp_path))
        reloaded = load_repository(str(tmp_path))
        for artifact in compiled.store.all():
            if artifact.text:
                again = reloaded.lookup(artifact.artifact_id)
                assert again.text == artifact.text

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(BackendError):
            load_repository(str(tmp_path / "nothing"))


class TestSlugCollisions:
    def test_distinct_ids_get_distinct_slugs(self):
        # ``graph:a.b`` and ``graph_a.b`` both sanitize to the same
        # characters; without the digest suffix they would silently
        # overwrite each other's files on save.
        from repro.backends.repository import _slug

        assert _slug("graph:a.b") != _slug("graph_a.b")
        assert _slug("graph:a.b") != _slug("graph/a.b")

    def test_clean_ids_keep_plain_slugs(self):
        from repro.backends.repository import _slug

        assert _slug("graph_a.b-1") == "graph_a.b-1"

    def test_colliding_artifacts_round_trip(self, tmp_path):
        from repro.backends.common import Artifact, ArtifactStore, Manifest

        store = ArtifactStore()
        for artifact_id, payload in (
            ("graph:a.b", {"which": "colon"}),
            ("graph_a.b", {"which": "underscore"}),
        ):
            store.add(
                Artifact(
                    manifest=Manifest(
                        artifact_id=artifact_id,
                        device="gpu",
                        task_ids=["t"],
                        graph_id="g",
                        source_language="opencl",
                    ),
                    payload=payload,
                    text=f"// {artifact_id}",
                )
            )
        save_repository(store, str(tmp_path))
        reloaded = load_repository(str(tmp_path))
        assert len(reloaded) == 2
        assert reloaded.lookup("graph:a.b").payload == {"which": "colon"}
        assert reloaded.lookup("graph_a.b").payload == {
            "which": "underscore"
        }
        assert reloaded.lookup("graph:a.b").text == "// graph:a.b"
