"""End-to-end resilience: every accelerated run degrades gracefully.

The acceptance property of the fault-injection PR: with a plan that
kills every GPU/FPGA call, every app still completes with output
identical to a cpu-only run, the trace records the injected faults,
retries, and bytecode demotions, and the whole fault sequence is
deterministic under a fixed seed.
"""

import pytest

from repro.apps import SUITE, compile_app
from repro.errors import RetryExhaustedError
from repro.obs import Tracer
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
    kill_all_devices_plan,
)

#: Apps whose default workload actually exercises an accelerator.
ACCELERATED = [
    "saxpy",
    "vector_sum",
    "mandelbrot",
    "bitflip",
    "gray_pipeline",
    "hybrid",
]


def run_app(name, **config_overrides):
    compiled = compile_app(name)
    entry, values = SUITE[name].default_args()
    runtime = Runtime(compiled, RuntimeConfig(**config_overrides))
    return runtime, runtime.run(entry, values)


@pytest.mark.parametrize("name", ACCELERATED)
@pytest.mark.parametrize("scheduler", ["threaded", "sequential"])
def test_kill_all_devices_matches_cpu_only(name, scheduler):
    _, reference = run_app(
        name,
        policy=SubstitutionPolicy(use_accelerators=False),
        scheduler=scheduler,
    )
    tracer = Tracer()
    runtime, degraded = run_app(
        name,
        scheduler=scheduler,
        tracer=tracer,
        fault_plan=kill_all_devices_plan(),
        retry=RetryPolicy(max_attempts=2),
    )
    assert degraded.output == reference.output
    assert repr(degraded.value) == repr(reference.value)
    if runtime.faults.fired():
        counters = tracer.counters
        assert counters.get("fault.injected[device]") >= 1
        assert counters.get("demotion.taken") >= 1
        assert len(runtime.demotion_log) >= 1
        assert tracer.find("demotion.taken")


def test_accelerated_apps_actually_get_faults():
    # Guard for the list above: each app must hit at least one device
    # call, otherwise the degradation test is vacuous.
    for name in ACCELERATED:
        runtime, _ = run_app(
            name,
            fault_plan=kill_all_devices_plan(),
            retry=RetryPolicy(max_attempts=1),
        )
        assert runtime.faults.fired() >= 1, name


def test_fault_sequence_deterministic_under_seed():
    def one_run():
        tracer = Tracer()
        runtime, outcome = run_app(
            "hybrid",
            tracer=tracer,
            fault_plan=FaultPlan(
                [FaultSpec(probability=0.6), FaultSpec(
                    site="marshal.to_device", error="marshaling",
                    target="gpu", probability=0.3,
                )],
                seed=1234,
            ),
            retry=RetryPolicy(max_attempts=3),
        )
        sequence = [
            (f.spec_index, f.site, f.error, f.target, f.call_index)
            for f in runtime.faults.log
        ]
        resilience_counters = {
            k: v
            for k, v in tracer.counters.snapshot().items()
            if k.startswith(("fault.", "retry.", "demotion."))
        }
        return sequence, resilience_counters, repr(outcome.value)

    first = one_run()
    second = one_run()
    assert first == second
    assert first[0], "expected at least one injected fault"


def test_transient_fault_recovers_without_demotion():
    # A single injected failure with retries available: the device
    # should succeed on attempt 2, no demotion.
    tracer = Tracer()
    runtime, degraded = run_app(
        "mandelbrot",
        tracer=tracer,
        fault_plan=FaultPlan([FaultSpec(on_calls=(1,))]),
        retry=RetryPolicy(max_attempts=3),
    )
    _, reference = run_app(
        "mandelbrot", policy=SubstitutionPolicy(use_accelerators=False)
    )
    assert repr(degraded.value) == repr(reference.value)
    assert runtime.faults.fired() == 1
    assert tracer.counters.get("retry.attempt") == 1
    assert tracer.counters.get("demotion.taken") == 0
    assert runtime.demotion_log == []
    # The offload was ultimately taken on the device.
    assert tracer.counters.get("offload.map.taken") == 1


def test_marshaling_fault_demotes_and_output_survives():
    tracer = Tracer()
    runtime, degraded = run_app(
        "saxpy",
        tracer=tracer,
        fault_plan=FaultPlan(
            [FaultSpec(site="marshal.from_device", error="marshaling",
                       target="gpu")]
        ),
        retry=RetryPolicy(max_attempts=2),
    )
    _, reference = run_app(
        "saxpy", policy=SubstitutionPolicy(use_accelerators=False)
    )
    assert repr(degraded.value) == repr(reference.value)
    assert tracer.counters.get("fault.injected[marshaling]") >= 1
    assert len(runtime.demotion_log) == 1


def test_timeout_fault_demotes_immediately():
    tracer = Tracer()
    runtime, _ = run_app(
        "mandelbrot",
        tracer=tracer,
        fault_plan=FaultPlan([FaultSpec(error="timeout")]),
        retry=RetryPolicy(max_attempts=5),
    )
    # One injection, no retries (hangs are not retried), one demotion.
    assert runtime.faults.fired() == 1
    assert tracer.counters.get("retry.attempt") == 0
    assert len(runtime.demotion_log) == 1


def test_demotion_pins_later_runs_to_bytecode():
    compiled = compile_app("mandelbrot")
    entry, values = SUITE["mandelbrot"].default_args()
    tracer = Tracer()
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            tracer=tracer,
            fault_plan=FaultPlan([FaultSpec(times=2)]),
            retry=RetryPolicy(max_attempts=2),
        ),
    )
    runtime.run(entry, values)
    assert len(runtime.demotion_log) == 1
    demoted = dict(runtime.policy.directives)
    assert demoted and all(d == "bytecode" for d in demoted.values())
    # Second run: the directive keeps the span off the device — no new
    # faults are even consulted at the device site.
    before = runtime.faults.fired()
    runtime.run(entry, values)
    assert runtime.faults.fired() == before
    assert len(runtime.demotion_log) == 1


def test_exhaustion_without_fallback_surfaces_context():
    # Stream span demoted via directive pinning is always possible
    # (bytecode filters exist), so exercise the no-fallback path
    # directly through the supervisor against a device artifact with
    # no known span filters.
    from repro.runtime.supervisor import Supervisor
    from repro.errors import DeviceError

    supervisor = Supervisor(RetryPolicy(max_attempts=2))
    with pytest.raises(RetryExhaustedError) as err:
        supervisor.run(
            lambda: (_ for _ in ()).throw(DeviceError("boom")),
            task_id="gpu:artifact",
            device="gpu",
        )
    assert "gpu:artifact" in str(err.value)
    assert err.value.attempts == 2
