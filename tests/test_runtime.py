"""End-to-end runtime tests: compilation -> substitution -> co-execution."""

import pytest

from tests.lime_sources import FIGURE1
from repro.backends.common import BYTECODE, FPGA, GPU
from repro.compiler import compile_program
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_BIT, ValueArray, parse_bit_literal


def bits(text):
    return ValueArray(KIND_BIT, parse_bit_literal(text))


def make_runtime(source=FIGURE1, policy=None, scheduler="threaded", **compile_kwargs):
    compiled = compile_program(source, **compile_kwargs)
    config = RuntimeConfig(scheduler=scheduler)
    if policy is not None:
        config.policy = policy
    return Runtime(compiled, config)


class TestTaskFlipEndToEnd:
    def test_taskflip_on_accelerator(self):
        runtime = make_runtime()
        result = runtime.call("Bitflip.taskFlip", [bits("110010111")])
        assert result == bits("001101000")

    def test_taskflip_bytecode_only(self):
        policy = SubstitutionPolicy(use_accelerators=False)
        runtime = make_runtime(policy=policy)
        result = runtime.call("Bitflip.taskFlip", [bits("110010111")])
        assert result == bits("001101000")

    def test_taskflip_sequential_scheduler(self):
        runtime = make_runtime(scheduler="sequential")
        result = runtime.call("Bitflip.taskFlip", [bits("100")])
        assert result == bits("011")

    def test_accelerated_matches_bytecode(self):
        accelerated = make_runtime()
        plain = make_runtime(policy=SubstitutionPolicy(use_accelerators=False))
        for text in ("1", "0", "10", "110010111", "1" * 64):
            arg = bits(text)
            assert accelerated.call(
                "Bitflip.taskFlip", [arg]
            ) == plain.call("Bitflip.taskFlip", [arg])

    def test_substitution_decision_logged(self):
        runtime = make_runtime()
        runtime.call("Bitflip.taskFlip", [bits("110010111")])
        graph_id, decisions = runtime.substitution_log[0]
        assert len(decisions) == 1
        # Default device order prefers the GPU artifact.
        assert decisions[0].device == GPU

    def test_manual_direction_to_fpga(self):
        # "that choice can be manually directed" (Section 4.2).
        compiled = compile_program(FIGURE1)
        flip_task_id = compiled.task_graphs[0].stages[1].task_id
        policy = SubstitutionPolicy(directives={flip_task_id: FPGA})
        runtime = Runtime(compiled, RuntimeConfig(policy=policy))
        result = runtime.call("Bitflip.taskFlip", [bits("100")])
        assert result == bits("011")
        _, decisions = runtime.substitution_log[0]
        assert decisions[0].device == FPGA

    def test_manual_direction_to_bytecode(self):
        compiled = compile_program(FIGURE1)
        flip_task_id = compiled.task_graphs[0].stages[1].task_id
        policy = SubstitutionPolicy(directives={flip_task_id: BYTECODE})
        runtime = Runtime(compiled, RuntimeConfig(policy=policy))
        result = runtime.call("Bitflip.taskFlip", [bits("100")])
        assert result == bits("011")
        _, decisions = runtime.substitution_log[0]
        assert decisions == []

    def test_graph_timing_recorded(self):
        runtime = make_runtime()
        outcome = runtime.run("Bitflip.taskFlip", [bits("110010111")])
        assert len(outcome.ledger.graph_runs) == 1
        run = outcome.ledger.graph_runs[0]
        assert run.wall_s > 0
        assert outcome.seconds > 0

    def test_device_offload_recorded(self):
        runtime = make_runtime()
        outcome = runtime.run("Bitflip.taskFlip", [bits("110010111")])
        offloads = [
            o for o in outcome.ledger.offloads if o.kind == "filter-batch"
        ]
        assert len(offloads) == 1
        assert offloads[0].items == 9
        assert offloads[0].transfer_s > 0


class TestMapReduceOffload:
    SOURCE = """
    class M {
        local static float sq(float x) { return x * x; }
        local static float add(float a, float b) { return a + b; }
        static float sumsq(float[[]] xs) {
            return M ! add(M @ sq(xs));
        }
    }
    """

    def array(self, n):
        from repro.values import KIND_FLOAT

        return ValueArray(KIND_FLOAT, [float(i) for i in range(n)])

    def expected(self, n):
        total = 0.0
        for i in range(n):
            import struct

            sq = struct.unpack("<f", struct.pack("<f", float(i) * float(i)))[0]
            total = struct.unpack(
                "<f", struct.pack("<f", total + sq)
            )[0]
        return total

    def test_small_map_stays_on_cpu(self):
        runtime = make_runtime(self.SOURCE)
        outcome = runtime.run("M.sumsq", [self.array(8)])
        assert outcome.value == pytest.approx(self.expected(8))
        assert outcome.ledger.offloads == []

    def test_large_map_offloads_to_gpu(self):
        runtime = make_runtime(self.SOURCE)
        outcome = runtime.run("M.sumsq", [self.array(256)])
        assert outcome.value == pytest.approx(self.expected(256), rel=1e-5)
        kinds = {o.kind for o in outcome.ledger.offloads}
        assert kinds == {"map", "reduce"}

    def test_gpu_and_cpu_results_identical(self):
        gpu_rt = make_runtime(self.SOURCE)
        cpu_rt = make_runtime(
            self.SOURCE, policy=SubstitutionPolicy(use_accelerators=False)
        )
        arg = self.array(512)
        assert gpu_rt.call("M.sumsq", [arg]) == cpu_rt.call(
            "M.sumsq", [arg]
        )

    def test_offload_timing_parts(self):
        runtime = make_runtime(self.SOURCE)
        outcome = runtime.run("M.sumsq", [self.array(1024)])
        for offload in outcome.ledger.offloads:
            assert offload.kernel_s > 0
            assert offload.transfer_s > 0
            assert offload.total_s == pytest.approx(
                offload.kernel_s + offload.transfer_s
            )


class TestPolicies:
    def test_prefer_larger_substitution(self):
        source = """
        class P {
            local static int inc(int x) { return x + 1; }
            local static int dbl(int x) { return x * 2; }
            static int run(int[[]] xs) {
                int[] out = new int[xs.length];
                var t = xs.source(1) => ([ task inc => task dbl ]) => out.sink();
                t.finish();
                int s = 0;
                for (int i = 0; i < out.length; i++) { s += out[i]; }
                return s;
            }
        }
        """
        from repro.values import KIND_INT

        runtime = make_runtime(source)
        xs = ValueArray(KIND_INT, list(range(10)))
        total = runtime.call("P.run", [xs])
        assert total == sum((x + 1) * 2 for x in range(10))
        _, decisions = runtime.substitution_log[0]
        assert len(decisions) == 1
        assert len(decisions[0].covered_task_ids) == 2  # fused span won

    def test_prefer_smaller_ablation(self):
        source = """
        class P {
            local static int inc(int x) { return x + 1; }
            local static int dbl(int x) { return x * 2; }
            static int run(int[[]] xs) {
                int[] out = new int[xs.length];
                var t = xs.source(1) => ([ task inc => task dbl ]) => out.sink();
                t.finish();
                return out[0];
            }
        }
        """
        from repro.values import KIND_INT

        policy = SubstitutionPolicy(prefer_larger=False)
        runtime = make_runtime(source, policy=policy)
        xs = ValueArray(KIND_INT, [5])
        assert runtime.call("P.run", [xs]) == 12
        _, decisions = runtime.substitution_log[0]
        assert all(len(d.covered_task_ids) == 1 for d in decisions)
        assert len(decisions) == 2

    def test_communication_aware_policy_rejects_tiny_stream(self):
        policy = SubstitutionPolicy(communication_aware=True)
        runtime = make_runtime(policy=policy)
        result = runtime.call("Bitflip.taskFlip", [bits("10")])
        assert result == bits("01")
        _, decisions = runtime.substitution_log[0]
        # Two bits over PCIe: transfer swamps compute; stays on CPU.
        assert decisions == []


class TestRunOutcome:
    def test_stdout_captured(self):
        source = 'class T { static void m() { println("running"); } }'
        runtime = make_runtime(source)
        outcome = runtime.run("T.m")
        assert outcome.output == "running\n"

    def test_host_time_positive(self):
        source = (
            "class T { static int m() { int s = 0; "
            "for (int i = 0; i < 100; i++) { s += i; } return s; } }"
        )
        runtime = make_runtime(source)
        outcome = runtime.run("T.m")
        assert outcome.ledger.host_s > 0
        assert outcome.ledger.graph_s == 0
