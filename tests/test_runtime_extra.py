"""Extra runtime behaviours: chunked sources, multi-input filters,
start()/finish() semantics, multiple graphs, dynamic graphs."""

import pytest

from repro.compiler import compile_program
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_BIT, KIND_INT, Bit, ValueArray


def runtime_for(source, **config):
    return Runtime(compile_program(source), RuntimeConfig(**config))


class TestChunkedSource:
    SOURCE = """
    class Chunks {
        local static int ones(bit[[]] chunk) {
            int count = 0;
            for (int i = 0; i < chunk.length; i++) {
                if (chunk[i] == bit.one) { count += 1; }
            }
            return count;
        }
        static int[[]] countOnes(bit[[]] stream) {
            int[] out = new int[stream.length / 4];
            var t = stream.source(4) => ([ task ones ]) => out.<int>sink();
            t.finish();
            return new int[[]](out);
        }
    }
    """

    def bits(self, values):
        return ValueArray(KIND_BIT, [Bit(v) for v in values])

    def test_source_rate_4_chunks(self):
        runtime = runtime_for(self.SOURCE)
        stream = self.bits([1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 1])
        result = runtime.call("Chunks.countOnes", [stream])
        assert list(result) == [2, 3, 1]

    def test_gpu_excludes_chunked_filter_without_crashing(self):
        compiled = compile_program(self.SOURCE)
        # The task consumes bit[[]] chunks: no GPU filter artifact, but
        # an exclusion explaining why.
        gpu_filters = [
            a
            for a in compiled.store.for_device("gpu")
            if getattr(a.payload, "kind", "") == "filter"
        ]
        assert gpu_filters == []
        reasons = [
            e.reason
            for e in compiled.store.exclusions
            if e.device == "gpu"
        ]
        assert any("non-scalar" in r for r in reasons)


class TestMultiInputFilter:
    SOURCE = """
    class Pairs {
        local static int add(int a, int b) {
            return a + b;
        }
        static int[[]] pairSums(int[[]] xs) {
            int[] out = new int[xs.length / 2];
            var t = xs.source(1) => ([ task add ]) => out.<int>sink();
            t.finish();
            return new int[[]](out);
        }
    }
    """

    def test_consumes_two_items_per_firing(self):
        # Section 2.2: the actor fires "when the port contains
        # sufficient data to satisfy the argument requirements".
        runtime = runtime_for(self.SOURCE)
        xs = ValueArray(KIND_INT, [1, 2, 3, 4, 5, 6])
        assert list(runtime.call("Pairs.pairSums", [xs])) == [3, 7, 11]

    def test_odd_stream_is_runtime_error(self):
        from repro.errors import RuntimeGraphError

        runtime = runtime_for(self.SOURCE, scheduler="sequential")
        xs = ValueArray(KIND_INT, [1, 2, 3])
        with pytest.raises(RuntimeGraphError):
            runtime.call("Pairs.pairSums", [xs])

    def test_backends_exclude_multi_input(self):
        compiled = compile_program(self.SOURCE)
        reasons = {
            e.device for e in compiled.store.exclusions
        }
        assert reasons == {"gpu", "fpga"}


class TestStartFinish:
    SOURCE = """
    class SF {
        local static int dbl(int x) { return x * 2; }
        static int[[]] viaStart(int[[]] xs) {
            int[] out = new int[xs.length];
            var t = xs.source(1) => task dbl => out.<int>sink();
            t.start();
            t.finish();
            return new int[[]](out);
        }
        static int[[]] startOnly(int[[]] xs) {
            int[] out = new int[xs.length];
            var t = xs.source(1) => task dbl => out.<int>sink();
            t.start();
            return new int[[]](out);
        }
    }
    """

    def test_start_then_finish(self):
        runtime = runtime_for(self.SOURCE)
        xs = ValueArray(KIND_INT, [1, 2, 3])
        assert list(runtime.call("SF.viaStart", [xs])) == [2, 4, 6]

    def test_start_executes_eagerly(self):
        # Documented deviation: start() completes eagerly (finite
        # sources), so results are already visible.
        runtime = runtime_for(self.SOURCE)
        xs = ValueArray(KIND_INT, [5])
        assert list(runtime.call("SF.startOnly", [xs])) == [10]


class TestMultipleGraphs:
    SOURCE = """
    class Multi {
        local static int inc(int x) { return x + 1; }
        local static int dec(int x) { return x - 1; }
        static int run(int[[]] xs) {
            int[] ups = new int[xs.length];
            int[] downs = new int[xs.length];
            var t1 = xs.source(1) => ([ task inc ]) => ups.<int>sink();
            t1.finish();
            var t2 = xs.source(1) => ([ task dec ]) => downs.<int>sink();
            t2.finish();
            int s = 0;
            for (int i = 0; i < xs.length; i++) {
                s += ups[i] * downs[i];
            }
            return s;
        }
    }
    """

    def test_two_graphs_two_runs(self):
        runtime = runtime_for(self.SOURCE)
        xs = ValueArray(KIND_INT, [2, 3, 4])
        outcome = runtime.run("Multi.run", [xs])
        assert outcome.value == sum((x + 1) * (x - 1) for x in [2, 3, 4])
        assert len(outcome.ledger.graph_runs) == 2

    def test_distinct_graph_ids(self):
        compiled = compile_program(self.SOURCE)
        ids = [g.graph_id for g in compiled.task_graphs]
        assert len(set(ids)) == 2


class TestDynamicGraph:
    SOURCE = """
    class Dyn {
        local static int neg(int x) { return -x; }
        static int[[]] maybe(int[[]] xs, boolean go) {
            int[] out = new int[xs.length];
            if (go) {
                var t = xs.source(1) => task neg => out.<int>sink();
                t.finish();
            } else {
                for (int i = 0; i < xs.length; i++) { out[i] = xs[i]; }
            }
            return new int[[]](out);
        }
    }
    """

    def test_dynamic_graph_runs_on_bytecode(self):
        # No static shape (built under control flow, no reloc brackets)
        # -> the graph still executes, purely via the runtime.
        runtime = runtime_for(self.SOURCE)
        xs = ValueArray(KIND_INT, [1, -2, 3])
        assert list(runtime.call("Dyn.maybe", [xs, True])) == [-1, 2, -3]
        assert list(runtime.call("Dyn.maybe", [xs, False])) == [1, -2, 3]

    def test_dynamic_graph_has_no_static_ids(self):
        compiled = compile_program(self.SOURCE)
        assert compiled.task_graphs == []


class TestDeterminism:
    def test_simulated_times_exactly_reproducible(self):
        """EXPERIMENTS.md claims simulated times are exactly
        reproducible; verify for a full accelerated run."""
        from repro.apps import SUITE, compile_app

        entry, args = SUITE["crc8"].default_args()

        def one_run():
            runtime = Runtime(
                compile_app("crc8"), RuntimeConfig(scheduler="sequential")
            )
            outcome = runtime.run(entry, args)
            return outcome.value, outcome.seconds

        value_a, seconds_a = one_run()
        value_b, seconds_b = one_run()
        assert value_a == value_b
        assert seconds_a == seconds_b  # bit-exact, not approximately

    def test_threaded_timing_matches_sequential(self):
        """The per-stage cycle accounting is schedule-independent, so
        even the threaded scheduler's *simulated* time is deterministic
        and equals the sequential scheduler's."""
        from repro.apps import SUITE, compile_app

        entry, args = SUITE["gray_pipeline"].default_args()
        compiled = compile_app("gray_pipeline")
        threaded = Runtime(
            compiled, RuntimeConfig(scheduler="threaded")
        ).run(entry, args)
        sequential = Runtime(
            compiled, RuntimeConfig(scheduler="sequential")
        ).run(entry, args)
        assert threaded.value == sequential.value
        assert threaded.seconds == pytest.approx(
            sequential.seconds, rel=1e-9
        )
