"""Tests for the marshaling boundary, timing ledger, and interconnects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices.interconnect import (
    ATTACHMENTS,
    PCIE_GEN2_X8,
    PCIE_GEN2_X16,
    UART_921600,
    Link,
)
from repro.runtime.marshaling import BoundaryCosts, MarshalingBoundary
from repro.runtime.timing import (
    GraphRun,
    OffloadRecord,
    TimingLedger,
    TransferRecord,
)
from repro.values import KIND_FLOAT, KIND_INT, ValueArray


class TestLinks:
    def test_transfer_time_components(self):
        link = Link("test", 1e9, 1e-6)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1_000_000) == pytest.approx(
            1e-6 + 1e-3
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN2_X8.transfer_time(-1)

    def test_round_trip(self):
        rt = PCIE_GEN2_X16.round_trip_time(1000, 2000)
        assert rt == pytest.approx(
            PCIE_GEN2_X16.transfer_time(1000)
            + PCIE_GEN2_X16.transfer_time(2000)
        )

    def test_uart_is_orders_of_magnitude_slower(self):
        n = 100_000
        assert (
            UART_921600.transfer_time(n)
            / PCIE_GEN2_X8.transfer_time(n)
            > 1000
        )

    def test_attachment_registry(self):
        assert set(ATTACHMENTS) == {"pcie-x8", "pcie-x16", "uart"}


class TestBoundary:
    def test_round_trip_preserves_value(self):
        boundary = MarshalingBoundary()
        arr = ValueArray(KIND_FLOAT, [1.5, -2.25])
        result, records = boundary.round_trip(arr)
        assert result == arr
        assert [r.direction for r in records] == [
            "to-device",
            "from-device",
        ]

    def test_costs_scale_with_bytes(self):
        boundary = MarshalingBoundary()
        small = ValueArray(KIND_INT, [0] * 100)
        large = ValueArray(KIND_INT, [0] * 100_000)
        _, rec_small = boundary.to_device(small)
        _, rec_large = boundary.to_device(large)
        assert rec_large.serialize_s > rec_small.serialize_s * 100
        assert rec_large.total_s > rec_small.total_s

    def test_three_steps_plus_link(self):
        boundary = MarshalingBoundary(PCIE_GEN2_X16)
        _, rec = boundary.to_device(ValueArray(KIND_INT, [1, 2, 3]))
        assert rec.serialize_s > 0
        assert rec.crossing_s > 0
        assert rec.convert_s > 0
        assert rec.link_s > 0
        assert rec.total_s == pytest.approx(
            rec.serialize_s + rec.crossing_s + rec.convert_s + rec.link_s
        )

    def test_log_accumulates(self):
        boundary = MarshalingBoundary()
        boundary.to_device(ValueArray(KIND_INT, [1]))
        boundary.to_device(ValueArray(KIND_INT, [2]))
        assert len(boundary.log) == 2
        assert boundary.total_bytes > 0
        assert boundary.total_seconds > 0

    def test_custom_costs(self):
        slow = BoundaryCosts(serialize_per_byte_s=1e-6)
        boundary = MarshalingBoundary(costs=slow)
        _, rec = boundary.to_device(ValueArray(KIND_INT, [0] * 1000))
        fast_rec = MarshalingBoundary().to_device(
            ValueArray(KIND_INT, [0] * 1000)
        )[1]
        assert rec.serialize_s > fast_rec.serialize_s * 100

    @given(st.lists(st.integers(-1000, 1000), max_size=50))
    def test_round_trip_property(self, xs):
        boundary = MarshalingBoundary()
        arr = ValueArray(KIND_INT, xs)
        result, _ = boundary.round_trip(arr)
        assert result == arr


class TestTimingLedger:
    def test_host_seconds(self):
        ledger = TimingLedger(cpu_clock_hz=1e9)
        ledger.add_host_cycles(1_000_000)
        assert ledger.host_s == pytest.approx(1e-3)

    def test_total_combines_components(self):
        ledger = TimingLedger()
        ledger.add_host_cycles(3_000_000)  # 1ms at 3GHz
        transfer = TransferRecord("to-device", 100, 1e-6, 1e-6, 1e-6, 1e-6)
        ledger.add_offload(
            OffloadRecord("map", "k", "gpu", 10, 5e-6, [transfer])
        )
        run = ledger.new_graph_run("g")
        run.stage("t", "bytecode").busy_s = 2e-3
        assert ledger.total_s == pytest.approx(
            1e-3 + 5e-6 + 4e-6 + 2e-3
        )

    def test_graph_run_pipeline_model(self):
        run = GraphRun("g")
        run.stage("a", "bytecode").busy_s = 1.0
        run.stage("b", "gpu").busy_s = 3.0
        run.stage("c", "bytecode").busy_s = 2.0
        assert run.wall_s == 3.0        # slowest stage dominates
        assert run.total_work_s == 6.0  # but all work is accounted

    def test_offload_record_totals(self):
        t1 = TransferRecord("to-device", 10, 1e-6, 2e-6, 3e-6, 4e-6)
        record = OffloadRecord("map", "k", "gpu", 1, 1e-5, [t1])
        assert record.transfer_s == pytest.approx(1e-5)
        assert record.total_s == pytest.approx(2e-5)

    def test_summary_shape(self):
        ledger = TimingLedger()
        summary = ledger.summary()
        assert set(summary) == {
            "host_s",
            "offload_s",
            "graph_s",
            "total_s",
            "offloads",
            "graph_runs",
        }


class TestBatchedBoundary:
    """The batched fast path: one crossing per batch, not per value."""

    def test_transfer_batch_preserves_values(self):
        boundary = MarshalingBoundary()
        values = [1, -2, 3, -4]
        result, records = boundary.transfer_batch(values)
        assert result == values
        assert [r.direction for r in records] == [
            "to-device",
            "from-device",
        ]

    def test_one_crossing_per_batch(self):
        # N per-element round trips pay N fixed crossings each way; one
        # batched round trip pays exactly one — that amortization IS
        # the fast path (docs/PERFORMANCE.md).
        n = 64
        per_element = MarshalingBoundary()
        for v in range(n):
            per_element.round_trip(v)
        batched = MarshalingBoundary()
        batched.transfer_batch(list(range(n)))
        assert len(per_element.log) == 2 * n
        assert len(batched.log) == 2
        fixed = batched.costs.crossing_fixed_s
        scalar_fixed_total = sum(r.crossing_s for r in per_element.log)
        batch_fixed_total = sum(r.crossing_s for r in batched.log)
        assert scalar_fixed_total >= 2 * n * fixed
        assert batch_fixed_total < 2 * 2 * fixed + scalar_fixed_total / n

    def test_batch_bytes_beat_per_element_bytes(self):
        # One shared header vs a tag byte per value: the batch frame is
        # strictly smaller than the sum of scalar frames for n > 1.
        n = 100
        scalar_bytes = sum(
            len(MarshalingBoundary().to_device(v)[0]) for v in range(n)
        )
        batch_bytes = len(
            MarshalingBoundary().to_device_batch(list(range(n)))[0]
        )
        assert batch_bytes < scalar_bytes

    def test_counters_record_batch_shape(self):
        from repro.obs import Tracer

        tracer = Tracer()
        boundary = MarshalingBoundary(tracer=tracer)
        boundary.transfer_batch([1.5, 2.5, 3.5])
        counters = tracer.counters
        assert counters.get("marshal.batch.crossings") == 2
        assert counters.get("marshal.batch.values") == 6  # 3 each way
        assert counters.get(f"marshal.bytes[{boundary.link.name}]") > 0
        assert tracer.find("run.marshal.batch.to_device")
        assert tracer.find("run.marshal.batch.from_device")

    def test_explicit_kind_for_empty_batch(self):
        boundary = MarshalingBoundary()
        result, records = boundary.transfer_batch([], kind=KIND_INT)
        assert result == []
        assert len(records) == 2

    def test_buffer_pool_reuses_staging_buffers(self):
        from repro.values.bufpool import BufferPool
        from repro.values import serialize_batch

        pool = BufferPool()
        for _ in range(5):
            serialize_batch(list(range(256)), pool=pool)
        stats = pool.stats()
        assert stats["misses"] == 1     # first acquire allocates
        assert stats["hits"] == 4       # the rest reuse it
        assert stats["releases"] == 5
        assert pool.pooled_buffers == 1
