"""Unit tests for FIFO connections and the runtime task classes."""

import threading
import time

import pytest

from repro.errors import RuntimeGraphError
from repro.runtime.queues import END_OF_STREAM, Connection, EndOfStream
from repro.runtime.tasks import SinkTask, SourceTask
from repro.values import KIND_INT, MutableArray, ValueArray


class TestEndOfStream:
    def test_singleton(self):
        assert EndOfStream() is END_OF_STREAM

    def test_repr(self):
        assert "end-of-stream" in repr(END_OF_STREAM)


class TestConnection:
    def test_fifo_order(self):
        conn = Connection()
        for i in range(10):
            conn.put(i)
        assert [conn.get() for _ in range(10)] == list(range(10))

    def test_items_transferred_excludes_eos(self):
        conn = Connection()
        conn.put(1)
        conn.close()
        assert conn.items_transferred == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(RuntimeGraphError):
            Connection(capacity=0)

    def test_get_batch(self):
        conn = Connection()
        for i in range(4):
            conn.put(i)
        assert conn.get_batch(2) == [0, 1]
        assert conn.get_batch(2) == [2, 3]

    def test_get_batch_eos(self):
        conn = Connection()
        conn.close()
        assert conn.get_batch(3) == [END_OF_STREAM]

    def test_get_batch_partial_eos_is_error(self):
        conn = Connection()
        conn.put(1)
        conn.close()
        with pytest.raises(RuntimeGraphError):
            conn.get_batch(2)

    def test_blocking_behaviour(self):
        conn = Connection(capacity=2)
        received = []

        def consumer():
            while True:
                item = conn.get()
                if item is END_OF_STREAM:
                    return
                received.append(item)

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(100):  # more than capacity: producer must block
            conn.put(i)
        conn.close()
        thread.join(timeout=5)
        assert received == list(range(100))

    def test_drain(self):
        conn = Connection()
        conn.put(1)
        conn.put(2)
        assert conn.drain() == [1, 2]
        assert conn.drain() == []


class TestBackpressure:
    """Bounded-FIFO semantics under contention (Section 4.1: upstream
    tasks block when a downstream stage is slow)."""

    def test_capacity_one_blocks_producer(self):
        conn = Connection(capacity=1)
        conn.put(0)  # queue now full
        second_put_done = threading.Event()

        def producer():
            conn.put(1)  # must block until the consumer drains
            second_put_done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not second_put_done.wait(timeout=0.05)
        assert conn.approximate_depth == 1
        assert conn.get() == 0
        assert second_put_done.wait(timeout=5)
        assert conn.get() == 1
        thread.join(timeout=5)

    def test_close_while_producer_blocked(self):
        # close() enqueues the end-of-stream sentinel through the same
        # bounded queue, so a producer blocked on a full capacity-1
        # connection must be drained before close() can complete.
        conn = Connection(capacity=1)
        conn.put(0)
        closed = threading.Event()

        def producer():
            conn.put(1)
            conn.close()
            closed.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not closed.wait(timeout=0.05)  # still blocked on put(1)
        received = []
        while True:
            item = conn.get()
            if item is END_OF_STREAM:
                break
            received.append(item)
        assert closed.wait(timeout=5)
        assert received == [0, 1]
        assert conn.items_transferred == 2
        thread.join(timeout=5)

    def test_fast_producer_slow_consumer_threaded_scheduler(self):
        # End-to-end: a capacity-1 pipeline where the middle stage is
        # slower than the source. The scheduler must neither drop nor
        # reorder items, and the connection depth can never exceed the
        # configured capacity.
        import time

        from repro.runtime.graph import Pipeline
        from repro.runtime.scheduler import ThreadedScheduler
        from repro.runtime.tasks import ExecutionContext, Task
        from repro.runtime.timing import TimingLedger

        class _SlowRelay(Task):
            kind = "filter"
            device = "bytecode"

            def __init__(self):
                super().__init__("t:slow")
                self.seen_depths = []

            def run(self, ctx):
                while True:
                    item = self.input_conn.get()
                    self.seen_depths.append(
                        self.input_conn.approximate_depth
                    )
                    if item is END_OF_STREAM:
                        break
                    time.sleep(0.002)  # slower than the producer
                    self.output_conn.put(item)
                self.output_conn.close()

        class _Engine:
            config = None

            def __init__(self):
                self.ledger = TimingLedger()

            def metered_call(self, method, args):
                return args[0], 1

        values = list(range(24))
        relay = _SlowRelay()
        sink = SinkTask(MutableArray.allocate(KIND_INT, len(values)))
        pipeline = Pipeline(
            [SourceTask(ValueArray(KIND_INT, values), 1), relay, sink]
        )
        engine = _Engine()
        ctx = ExecutionContext(engine, engine.ledger.new_graph_run("g"))
        ThreadedScheduler(queue_capacity=1).run_to_completion(pipeline, ctx)
        assert list(sink.array) == values
        assert relay.seen_depths  # consumer actually observed the queue
        assert max(relay.seen_depths) <= 1


class TestSourceSinkTasks:
    def test_source_requires_value_array(self):
        with pytest.raises(RuntimeGraphError):
            SourceTask(MutableArray(KIND_INT, [1]), 1)

    def test_sink_requires_mutable_array(self):
        with pytest.raises(RuntimeGraphError):
            SinkTask(ValueArray(KIND_INT, [1]))

    def test_source_rate_chunks(self):
        source = SourceTask(ValueArray(KIND_INT, [1, 2, 3, 4]), rate=2)
        chunks = source.emit_items()
        assert len(chunks) == 2
        assert list(chunks[0]) == [1, 2]
        assert list(chunks[1]) == [3, 4]

    def test_source_rate_one(self):
        source = SourceTask(ValueArray(KIND_INT, [7, 8]), rate=1)
        assert source.emit_items() == [7, 8]

    def test_sink_overflow_detected(self):
        sink = SinkTask(MutableArray.allocate(KIND_INT, 1))
        sink._store(1)
        with pytest.raises(RuntimeGraphError):
            sink._store(2)

    def test_dynamic_task_ids_unique(self):
        a = SourceTask(ValueArray(KIND_INT, [1]), 1)
        b = SourceTask(ValueArray(KIND_INT, [1]), 1)
        assert a.task_id != b.task_id


class TestDrainBounded:
    def test_returns_abandoned_items_and_appends_eos(self):
        conn = Connection(capacity=8)
        for i in range(5):
            conn.put(i)
        abandoned = conn.drain_bounded()
        assert abandoned == [0, 1, 2, 3, 4]
        # A sentinel is left behind so any blocked consumer wakes up.
        assert conn.get() is END_OF_STREAM

    def test_empty_queue_still_gets_sentinel(self):
        conn = Connection(capacity=2)
        assert conn.drain_bounded() == []
        assert conn.get() is END_OF_STREAM

    def test_unblocks_a_producer_stuck_on_a_full_queue(self):
        # The deadlock satellite: a producer blocked in put() on a
        # full FIFO whose consumer died must be released by the
        # scheduler's shutdown drain.
        conn = Connection(capacity=1)
        conn.put("seed")
        unblocked = threading.Event()

        def producer():
            conn.put("stuck")   # blocks until the drain empties it
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 2.0
        drained = []
        while not unblocked.is_set():
            drained.extend(conn.drain_bounded())
            if time.monotonic() > deadline:
                break
        assert unblocked.is_set()
        thread.join(2.0)
        assert not thread.is_alive()
        assert "seed" in drained

    def test_excludes_eos_from_abandoned_items(self):
        conn = Connection(capacity=8)
        conn.put(1)
        conn.close()
        abandoned = conn.drain_bounded()
        assert abandoned == [1]


class TestCancelMidStageShutdown:
    def test_threaded_cancel_drains_and_joins(self):
        """A job cancelled mid-stage on the threaded scheduler must
        drain its Connections and join worker threads — not deadlock
        on a full queue (the pre-PR hazard: a failed stage blocking in
        output_conn.close())."""
        from repro.apps import compile_app, workloads
        from repro.errors import JobCancelledError
        from repro.runtime.cancel import CancelToken
        from repro.runtime.engine import Runtime, RuntimeConfig

        class TripOnThirdPoll(CancelToken):
            def __init__(self):
                super().__init__(job_id="job-q", tenant="t")
                self._polls = 0

            def cancelled(self):
                self._polls += 1
                if self._polls > 3:
                    self.cancel()
                return super().cancelled()

        compiled = compile_app("gray_pipeline")
        runtime = Runtime(
            compiled,
            RuntimeConfig(scheduler="threaded"),
            cancel_token=TripOnThirdPoll(),
        )
        entry, args = workloads.small_args("gray_pipeline")
        before = threading.active_count()
        with pytest.raises(JobCancelledError) as excinfo:
            runtime.run(entry, args)
        assert excinfo.value.job_id == "job-q"
        assert runtime.shutdown_active(timeout_s=2.0)
        # Give daemonic workers a beat to exit, then confirm none of
        # the pipeline's threads are wedged in put()/close().
        deadline = time.monotonic() + 2.0
        while (
            threading.active_count() > before
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert threading.active_count() <= before
