"""Unit tests for FIFO connections and the runtime task classes."""

import threading

import pytest

from repro.errors import RuntimeGraphError
from repro.runtime.queues import END_OF_STREAM, Connection, EndOfStream
from repro.runtime.tasks import SinkTask, SourceTask
from repro.values import KIND_INT, MutableArray, ValueArray


class TestEndOfStream:
    def test_singleton(self):
        assert EndOfStream() is END_OF_STREAM

    def test_repr(self):
        assert "end-of-stream" in repr(END_OF_STREAM)


class TestConnection:
    def test_fifo_order(self):
        conn = Connection()
        for i in range(10):
            conn.put(i)
        assert [conn.get() for _ in range(10)] == list(range(10))

    def test_items_transferred_excludes_eos(self):
        conn = Connection()
        conn.put(1)
        conn.close()
        assert conn.items_transferred == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(RuntimeGraphError):
            Connection(capacity=0)

    def test_get_batch(self):
        conn = Connection()
        for i in range(4):
            conn.put(i)
        assert conn.get_batch(2) == [0, 1]
        assert conn.get_batch(2) == [2, 3]

    def test_get_batch_eos(self):
        conn = Connection()
        conn.close()
        assert conn.get_batch(3) == [END_OF_STREAM]

    def test_get_batch_partial_eos_is_error(self):
        conn = Connection()
        conn.put(1)
        conn.close()
        with pytest.raises(RuntimeGraphError):
            conn.get_batch(2)

    def test_blocking_behaviour(self):
        conn = Connection(capacity=2)
        received = []

        def consumer():
            while True:
                item = conn.get()
                if item is END_OF_STREAM:
                    return
                received.append(item)

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(100):  # more than capacity: producer must block
            conn.put(i)
        conn.close()
        thread.join(timeout=5)
        assert received == list(range(100))

    def test_drain(self):
        conn = Connection()
        conn.put(1)
        conn.put(2)
        assert conn.drain() == [1, 2]
        assert conn.drain() == []


class TestSourceSinkTasks:
    def test_source_requires_value_array(self):
        with pytest.raises(RuntimeGraphError):
            SourceTask(MutableArray(KIND_INT, [1]), 1)

    def test_sink_requires_mutable_array(self):
        with pytest.raises(RuntimeGraphError):
            SinkTask(ValueArray(KIND_INT, [1]))

    def test_source_rate_chunks(self):
        source = SourceTask(ValueArray(KIND_INT, [1, 2, 3, 4]), rate=2)
        chunks = source.emit_items()
        assert len(chunks) == 2
        assert list(chunks[0]) == [1, 2]
        assert list(chunks[1]) == [3, 4]

    def test_source_rate_one(self):
        source = SourceTask(ValueArray(KIND_INT, [7, 8]), rate=1)
        assert source.emit_items() == [7, 8]

    def test_sink_overflow_detected(self):
        sink = SinkTask(MutableArray.allocate(KIND_INT, 1))
        sink._store(1)
        with pytest.raises(RuntimeGraphError):
            sink._store(2)

    def test_dynamic_task_ids_unique(self):
        a = SourceTask(ValueArray(KIND_INT, [1]), 1)
        b = SourceTask(ValueArray(KIND_INT, [1]), 1)
        assert a.task_id != b.task_id
