"""Unit tests for the substitution planner and the pipeline graph."""

import pytest

from repro.backends.common import (
    Artifact,
    ArtifactStore,
    BYTECODE,
    FPGA,
    GPU,
    Manifest,
)
from repro.errors import RuntimeGraphError
from repro.runtime.graph import Pipeline
from repro.runtime.substitution import (
    SubstitutionPolicy,
    apply_substitutions,
    plan_substitutions,
)
from repro.runtime.tasks import FilterTask, SinkTask, SourceTask
from repro.values import KIND_INT, MutableArray, ValueArray


def make_pipeline(n_filters=3):
    source = SourceTask(ValueArray(KIND_INT, [1, 2, 3]), 1, "t:src")
    filters = [
        FilterTask(f"C.f{i}", 1, f"t:f{i}") for i in range(n_filters)
    ]
    sink = SinkTask(MutableArray.allocate(KIND_INT, 3), "t:sink")
    return Pipeline([source] + filters + [sink])


def artifact(device, task_ids, artifact_id=None):
    return Artifact(
        manifest=Manifest(
            artifact_id=artifact_id or f"{device}:{'+'.join(task_ids)}",
            device=device,
            task_ids=list(task_ids),
        ),
        payload=None,
    )


class TestArtifactStore:
    def test_spans_finds_contiguous(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        spans = store.spans(
            ["t:src", "t:f0", "t:f1", "t:f2", "t:sink"], GPU
        )
        assert spans == [(1, store.all()[0])]

    def test_spans_rejects_noncontiguous(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0", "t:f2"]))  # not adjacent
        spans = store.spans(
            ["t:src", "t:f0", "t:f1", "t:f2", "t:sink"], GPU
        )
        assert spans == []

    def test_lookup(self):
        store = ArtifactStore()
        a = artifact(GPU, ["t:f0"])
        store.add(a)
        assert store.lookup(a.artifact_id) is a
        assert store.lookup("nope") is None

    def test_for_task(self):
        store = ArtifactStore()
        a = artifact(GPU, ["t:f0"])
        b = artifact(FPGA, ["t:f0"])
        store.add(a)
        store.add(b)
        assert set(
            x.device for x in store.for_task("t:f0")
        ) == {GPU, FPGA}


class TestPlanner:
    def test_prefers_larger(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        store.add(artifact(GPU, ["t:f1"]))
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        decisions = plan_substitutions(
            make_pipeline(2), store, SubstitutionPolicy()
        )
        assert len(decisions) == 1
        assert decisions[0].covered_task_ids == ["t:f0", "t:f1"]

    def test_prefer_smaller_ablation(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        store.add(artifact(GPU, ["t:f1"]))
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        decisions = plan_substitutions(
            make_pipeline(2), store, SubstitutionPolicy(prefer_larger=False)
        )
        assert [d.covered_task_ids for d in decisions] == [
            ["t:f0"],
            ["t:f1"],
        ]

    def test_device_order_breaks_ties(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        store.add(artifact(FPGA, ["t:f0"]))
        gpu_first = plan_substitutions(
            make_pipeline(1), store, SubstitutionPolicy(device_order=(GPU, FPGA))
        )
        fpga_first = plan_substitutions(
            make_pipeline(1), store, SubstitutionPolicy(device_order=(FPGA, GPU))
        )
        assert gpu_first[0].device == GPU
        assert fpga_first[0].device == FPGA

    def test_non_overlapping_greedy(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        store.add(artifact(GPU, ["t:f1", "t:f2"]))
        decisions = plan_substitutions(
            make_pipeline(3), store, SubstitutionPolicy()
        )
        # One span wins; the overlapping one is dropped; f2 (or f0)
        # stays on bytecode unless a 1-wide artifact exists.
        assert len(decisions) == 1

    def test_directive_pins_to_bytecode(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        policy = SubstitutionPolicy(directives={"t:f0": BYTECODE})
        assert plan_substitutions(make_pipeline(1), store, policy) == []

    def test_directive_restricts_device(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        store.add(artifact(FPGA, ["t:f0"]))
        policy = SubstitutionPolicy(directives={"t:f0": FPGA})
        decisions = plan_substitutions(make_pipeline(1), store, policy)
        assert decisions[0].device == FPGA

    def test_directive_blocks_covering_span(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        policy = SubstitutionPolicy(directives={"t:f1": BYTECODE})
        assert plan_substitutions(make_pipeline(2), store, policy) == []

    def test_accelerators_disabled(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        policy = SubstitutionPolicy(use_accelerators=False)
        assert plan_substitutions(make_pipeline(1), store, policy) == []

    def test_communication_aware_estimator(self):
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0"]))
        policy = SubstitutionPolicy(communication_aware=True)
        reject = plan_substitutions(
            make_pipeline(1),
            store,
            policy,
            cost_estimator=lambda a, ids: (1.0, 0.001),  # transfer >> cpu
        )
        accept = plan_substitutions(
            make_pipeline(1),
            store,
            policy,
            cost_estimator=lambda a, ids: (0.001, 1.0),
        )
        assert reject == []
        assert len(accept) == 1


class TestPolicyValidation:
    def test_unknown_directive_device_rejected_eagerly(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as err:
            SubstitutionPolicy(directives={"t:f0": "gup"})
        assert "gup" in str(err.value)
        assert "t:f0" in str(err.value)

    def test_known_directive_devices_accepted(self):
        policy = SubstitutionPolicy(
            directives={"t:f0": BYTECODE, "t:f1": GPU, "t:f2": FPGA}
        )
        assert policy.directives["t:f1"] == GPU

    def test_demote_pins_tasks_to_bytecode(self):
        policy = SubstitutionPolicy(directives={"t:f0": GPU})
        policy.demote(["t:f0", "t:f1"])
        assert policy.directives == {"t:f0": BYTECODE, "t:f1": BYTECODE}
        # Demoted tasks no longer plan onto a device.
        store = ArtifactStore()
        store.add(artifact(GPU, ["t:f0", "t:f1"]))
        decisions = plan_substitutions(make_pipeline(2), store, policy)
        assert decisions == []


class TestApplySubstitutions:
    def test_rebuilds_pipeline(self):
        store = ArtifactStore()
        fused = artifact(GPU, ["t:f0", "t:f1"])
        store.add(fused)
        pipeline = make_pipeline(2)
        decisions = plan_substitutions(pipeline, store, SubstitutionPolicy())
        new = apply_substitutions(
            pipeline, decisions, store, lambda a: (lambda items: (items, 0.0))
        )
        kinds = [t.kind for t in new.tasks]
        assert kinds == ["source", "device", "sink"]
        assert new.tasks[1].covered_task_ids == ["t:f0", "t:f1"]

    def test_no_decisions_keeps_pipeline(self):
        pipeline = make_pipeline(1)
        assert (
            apply_substitutions(pipeline, [], ArtifactStore(), None)
            is pipeline
        )


class TestPipeline:
    def test_connect_rejects_after_sink(self):
        sink = SinkTask(MutableArray.allocate(KIND_INT, 1))
        other = FilterTask("C.f", 1)
        with pytest.raises(RuntimeGraphError):
            Pipeline.connect(sink, other)

    def test_connect_rejects_into_source(self):
        source = SourceTask(ValueArray(KIND_INT, [1]), 1)
        other = FilterTask("C.f", 1)
        with pytest.raises(RuntimeGraphError):
            Pipeline.connect(other, source)

    def test_validate_requires_closed(self):
        pipeline = Pipeline([FilterTask("C.f", 1)])
        with pytest.raises(RuntimeGraphError):
            pipeline.validate()

    def test_wire_creates_connections(self):
        pipeline = make_pipeline(2)
        pipeline.wire(capacity=8)
        assert pipeline.tasks[0].output_conn is pipeline.tasks[1].input_conn
        assert pipeline.tasks[0].output_conn.capacity == 8

    def test_describe(self):
        pipeline = make_pipeline(1)
        assert pipeline.describe() == "source(1) => f0 => sink"
