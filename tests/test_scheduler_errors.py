"""Error propagation and robustness in the graph schedulers, plus a
Sobel reference check."""

import pytest

from repro.apps import SUITE, compile_app
from repro.compiler import compile_program
from repro.errors import DeviceError, LiquidMetalError
from repro.runtime import Runtime, RuntimeConfig
from repro.values import KIND_INT, ValueArray


class TestErrorPropagation:
    FAULTY = """
    class F {
        local static int invert(int x) { return 100 / x; }
        static int[[]] run(int[[]] xs) {
            int[] out = new int[xs.length];
            var t = xs.source(1) => task invert => out.<int>sink();
            t.finish();
            return new int[[]](out);
        }
    }
    """

    def test_filter_exception_surfaces_threaded(self):
        runtime = Runtime(
            compile_program(self.FAULTY), RuntimeConfig(scheduler="threaded")
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])  # division by zero mid-stream
        with pytest.raises(LiquidMetalError):
            runtime.call("F.run", [xs])

    def test_filter_exception_surfaces_sequential(self):
        runtime = Runtime(
            compile_program(self.FAULTY),
            RuntimeConfig(scheduler="sequential"),
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])
        with pytest.raises(DeviceError):
            runtime.call("F.run", [xs])

    def test_runtime_survives_after_error(self):
        runtime = Runtime(compile_program(self.FAULTY))
        bad = ValueArray(KIND_INT, [0])
        good = ValueArray(KIND_INT, [4, 5])
        with pytest.raises(LiquidMetalError):
            runtime.call("F.run", [bad])
        assert list(runtime.call("F.run", [good])) == [25, 20]

    def test_sink_too_small_detected(self):
        source = """
        class S {
            local static int idf(int x) { return x; }
            static void run(int[[]] xs, int[] out) {
                var t = xs.source(1) => task idf => out.<int>sink();
                t.finish();
            }
        }
        """
        from repro.values import MutableArray

        runtime = Runtime(compile_program(source))
        xs = ValueArray(KIND_INT, [1, 2, 3])
        out = MutableArray.allocate(KIND_INT, 2)  # too small
        with pytest.raises(LiquidMetalError):
            runtime.call("S.run", [xs, out])


class TestSobel:
    def test_reference_implementation(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(12, 8)
        compiled = compile_app("sobel")
        outcome = Runtime(compiled).run(entry, args)
        _, image, width, height = args

        def ref(idx):
            x, y = idx % width, idx // width
            if x in (0, width - 1) or y in (0, height - 1):
                return 0
            p = lambda dx, dy: image[(y + dy) * width + x + dx]  # noqa: E731
            gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (
                p(-1, -1) + 2 * p(-1, 0) + p(-1, 1)
            )
            gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (
                p(-1, -1) + 2 * p(0, -1) + p(1, -1)
            )
            return min(abs(gx) + abs(gy), 255)

        for idx, got in enumerate(outcome.value):
            assert got == ref(idx), idx

    def test_borders_are_zero(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(10, 6)
        outcome = Runtime(compile_app("sobel")).run(entry, args)
        width, height = 10, 6
        values = list(outcome.value)
        for x in range(width):
            assert values[x] == 0
            assert values[(height - 1) * width + x] == 0

    def test_offloads_to_gpu(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(16, 8)
        outcome = Runtime(compile_app("sobel")).run(entry, args)
        assert any(o.device == "gpu" for o in outcome.ledger.offloads)
