"""Error propagation and robustness in the graph schedulers, plus a
Sobel reference check."""

import pytest

from repro.apps import SUITE, compile_app
from repro.compiler import compile_program
from repro.errors import DeviceError, LiquidMetalError
from repro.runtime import Runtime, RuntimeConfig
from repro.values import KIND_INT, ValueArray


class TestErrorPropagation:
    FAULTY = """
    class F {
        local static int invert(int x) { return 100 / x; }
        static int[[]] run(int[[]] xs) {
            int[] out = new int[xs.length];
            var t = xs.source(1) => task invert => out.<int>sink();
            t.finish();
            return new int[[]](out);
        }
    }
    """

    def test_filter_exception_surfaces_threaded(self):
        runtime = Runtime(
            compile_program(self.FAULTY), RuntimeConfig(scheduler="threaded")
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])  # division by zero mid-stream
        with pytest.raises(LiquidMetalError):
            runtime.call("F.run", [xs])

    def test_filter_exception_surfaces_sequential(self):
        runtime = Runtime(
            compile_program(self.FAULTY),
            RuntimeConfig(scheduler="sequential"),
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])
        with pytest.raises(DeviceError):
            runtime.call("F.run", [xs])

    def test_runtime_survives_after_error(self):
        runtime = Runtime(compile_program(self.FAULTY))
        bad = ValueArray(KIND_INT, [0])
        good = ValueArray(KIND_INT, [4, 5])
        with pytest.raises(LiquidMetalError):
            runtime.call("F.run", [bad])
        assert list(runtime.call("F.run", [good])) == [25, 20]

    def test_sink_too_small_detected(self):
        source = """
        class S {
            local static int idf(int x) { return x; }
            static void run(int[[]] xs, int[] out) {
                var t = xs.source(1) => task idf => out.<int>sink();
                t.finish();
            }
        }
        """
        from repro.values import MutableArray

        runtime = Runtime(compile_program(source))
        xs = ValueArray(KIND_INT, [1, 2, 3])
        out = MutableArray.allocate(KIND_INT, 2)  # too small
        with pytest.raises(LiquidMetalError):
            runtime.call("S.run", [xs, out])


class TestFailureContext:
    """Satellites: stage failures carry task/device context and a
    failed pipeline never masquerades as 'never started'."""

    FAULTY = TestErrorPropagation.FAULTY

    def test_threaded_error_names_failing_stage(self):
        runtime = Runtime(
            compile_program(self.FAULTY), RuntimeConfig(scheduler="threaded")
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])
        with pytest.raises(LiquidMetalError) as err:
            runtime.call("F.run", [xs])
        notes = "".join(getattr(err.value, "__notes__", []))
        assert "in stage" in notes
        assert "threaded scheduler" in notes

    def test_sequential_error_names_failing_stage(self):
        runtime = Runtime(
            compile_program(self.FAULTY),
            RuntimeConfig(scheduler="sequential"),
        )
        xs = ValueArray(KIND_INT, [1, 0, 5])
        with pytest.raises(DeviceError) as err:
            runtime.call("F.run", [xs])
        notes = "".join(getattr(err.value, "__notes__", []))
        assert "in stage" in notes
        assert "sequential scheduler" in notes

    def test_sequential_failed_pipeline_join_surfaces_original(self):
        """A mid-stage exception must not turn a later join() into a
        misleading 'graph was never started'."""
        from repro.runtime import Pipeline, SequentialScheduler
        from repro.runtime.tasks import ExecutionContext, SinkTask, SourceTask
        from repro.runtime.timing import TimingLedger
        from repro.values import MutableArray

        class _BrokenSink(SinkTask):
            def process_batch(self, items, ctx):
                raise DeviceError("sink exploded")

        class _Engine:
            config = None

            def __init__(self):
                self.ledger = TimingLedger()

            def metered_call(self, method, args):
                return args[0], 1

        pipeline = Pipeline(
            [
                SourceTask(ValueArray(KIND_INT, [1]), 1, "t:src"),
                _BrokenSink(MutableArray.allocate(KIND_INT, 1), "t:sink"),
            ]
        )
        scheduler = SequentialScheduler()
        engine = _Engine()
        ctx = ExecutionContext(engine, engine.ledger.new_graph_run("g"))
        with pytest.raises(DeviceError):
            scheduler.run_to_completion(pipeline, ctx)
        assert pipeline.failed
        # join() now surfaces the original failure, not "never started".
        with pytest.raises(DeviceError, match="sink exploded"):
            scheduler.join(pipeline)

    def test_threaded_join_unstarted_names_graph(self):
        from repro.runtime import Pipeline, ThreadedScheduler
        from repro.runtime.tasks import SinkTask, SourceTask
        from repro.values import MutableArray

        pipeline = Pipeline(
            [
                SourceTask(ValueArray(KIND_INT, [1]), 1, "t:src"),
                SinkTask(MutableArray.allocate(KIND_INT, 1), "t:sink"),
            ]
        )
        with pytest.raises(LiquidMetalError) as err:
            ThreadedScheduler().join(pipeline)
        assert "never started" in str(err.value)
        assert "source(1) => sink" in str(err.value)


class TestSobel:
    def test_reference_implementation(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(12, 8)
        compiled = compile_app("sobel")
        outcome = Runtime(compiled).run(entry, args)
        _, image, width, height = args

        def ref(idx):
            x, y = idx % width, idx // width
            if x in (0, width - 1) or y in (0, height - 1):
                return 0
            p = lambda dx, dy: image[(y + dy) * width + x + dx]  # noqa: E731
            gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (
                p(-1, -1) + 2 * p(-1, 0) + p(-1, 1)
            )
            gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (
                p(-1, -1) + 2 * p(0, -1) + p(1, -1)
            )
            return min(abs(gx) + abs(gy), 255)

        for idx, got in enumerate(outcome.value):
            assert got == ref(idx), idx

    def test_borders_are_zero(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(10, 6)
        outcome = Runtime(compile_app("sobel")).run(entry, args)
        width, height = 10, 6
        values = list(outcome.value)
        for x in range(width):
            assert values[x] == 0
            assert values[(height - 1) * width + x] == 0

    def test_offloads_to_gpu(self):
        from repro.apps.workloads import sobel_args

        entry, args = sobel_args(16, 8)
        outcome = Runtime(compile_app("sobel")).run(entry, args)
        assert any(o.device == "gpu" for o in outcome.ledger.offloads)
