"""Tests for the long-lived co-execution service (repro.service).

Covers the device pool, admission control (deterministic WRR
fairness, queue-depth rejection), job-scoped deadlines and
cancellation (no leaked leases), graceful degradation with shared
breakers re-promoting across jobs, and the ``repro.service/1``
report."""

import threading

import pytest

from repro.apps import SUITE, workloads
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    JobCancelledError,
    JobResultTimeout,
    LiquidMetalError,
)
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    HealthPolicy,
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    SubstitutionPolicy,
)
from repro.runtime.cancel import CancelToken
from repro.service import (
    CANCELLED,
    COMPLETED,
    AdmissionController,
    CoExecutionService,
    DevicePool,
    ServiceConfig,
    render_service_report,
    run_service_driver,
    validate_service_report,
)

GPU = "gpu"
FPGA = "fpga"


def _service(**overrides):
    runtime = overrides.pop(
        "runtime", RuntimeConfig(scheduler="sequential")
    )
    return CoExecutionService(
        ServiceConfig(runtime=runtime, **overrides)
    )


def _submit_app(service, app, tenant, **kwargs):
    entry, args = workloads.small_args(app)
    return service.submit(
        SUITE[app].source,
        entry,
        args,
        tenant=tenant,
        app=app,
        filename=f"<{app}.lime>",
        **kwargs,
    )


# ----------------------------------------------------------------------
# DevicePool
# ----------------------------------------------------------------------


class TestDevicePool:
    def test_acquire_release_roundtrip(self):
        pool = DevicePool({GPU: 2, FPGA: 1})
        lease = pool.acquire((GPU, FPGA))
        assert lease is not None
        assert pool.occupancy() == {GPU: 1, FPGA: 1}
        pool.release(lease)
        assert pool.occupancy() == {GPU: 0, FPGA: 0}

    def test_all_or_nothing(self):
        pool = DevicePool({GPU: 2, FPGA: 1})
        first = pool.acquire((FPGA,))
        assert first is not None
        # GPU has free slots but FPGA does not: nothing is taken.
        assert pool.acquire((GPU, FPGA)) is None
        assert pool.occupancy() == {GPU: 0, FPGA: 1}
        assert pool.leases_denied == 1
        pool.release(first)

    def test_empty_request_always_succeeds(self):
        pool = DevicePool({GPU: 0, FPGA: 0})
        lease = pool.acquire(())
        assert lease is not None and lease.families == ()
        pool.release(lease)

    def test_release_is_idempotent_and_none_tolerant(self):
        pool = DevicePool({GPU: 1})
        lease = pool.acquire((GPU,))
        pool.release(lease)
        pool.release(lease)
        pool.release(None)
        assert pool.occupancy() == {GPU: 0}
        assert pool.leases_released == 1

    def test_unknown_family_raises(self):
        pool = DevicePool({GPU: 1})
        with pytest.raises(ConfigurationError):
            pool.acquire(("tpu",))

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            DevicePool({GPU: -1})

    def test_snapshot_tracks_peak(self):
        pool = DevicePool({GPU: 2})
        a = pool.acquire((GPU,))
        b = pool.acquire((GPU,))
        pool.release(a)
        pool.release(b)
        snap = pool.snapshot()
        assert snap["peak"] == {GPU: 2}
        assert snap["in_use"] == {GPU: 0}
        assert snap["granted"] == 2
        assert snap["released"] == 2


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class _FakeJob:
    def __init__(self, tenant, n):
        self.tenant = tenant
        self.n = n

    def __repr__(self):
        return f"{self.tenant}#{self.n}"


class TestAdmissionFairness:
    def _saturated(self, weights, depth=8):
        ctl = AdmissionController(max_queue_depth=depth)
        for name, weight in weights.items():
            ctl.register(name, weight)
        for name in weights:
            for n in range(depth):
                ctl.enqueue(name, _FakeJob(name, n))
        return ctl

    def test_smooth_wrr_order_is_deterministic(self):
        # a:2, b:1 under saturation — smooth WRR interleaves 2:1,
        # never bursts, and the order is a pure function of state.
        ctl = self._saturated({"a": 2, "b": 1}, depth=8)
        order = [ctl.next_job().tenant for _ in range(6)]
        assert order == ["a", "b", "a", "a", "b", "a"]

    def test_wrr_order_reproducible_across_controllers(self):
        runs = []
        for _ in range(2):
            ctl = self._saturated({"a": 3, "b": 2, "c": 1}, depth=6)
            runs.append([ctl.next_job().tenant for _ in range(12)])
        assert runs[0] == runs[1]
        # Over one full cycle each tenant gets exactly its weight.
        counts = {t: runs[0][:6].count(t) for t in ("a", "b", "c")}
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_equal_weights_tie_breaks_by_name(self):
        ctl = self._saturated({"x": 1, "y": 1}, depth=4)
        assert [ctl.next_job().tenant for _ in range(4)] == [
            "x", "y", "x", "y",
        ]

    def test_fifo_within_tenant(self):
        ctl = self._saturated({"a": 1}, depth=4)
        assert [ctl.next_job().n for _ in range(4)] == [0, 1, 2, 3]

    def test_exclude_skips_tenant_without_penalty(self):
        ctl = self._saturated({"a": 2, "b": 1}, depth=4)
        job = ctl.next_job(exclude={"a"})
        assert job.tenant == "b"
        assert job.n == 0

    def test_requeue_front_preserves_order(self):
        ctl = self._saturated({"a": 1}, depth=3)
        job = ctl.next_job()
        ctl.requeue_front(job)
        assert ctl.next_job() is job

    def test_queue_depth_rejection_is_typed(self):
        ctl = AdmissionController(max_queue_depth=2)
        ctl.register("a", 1)
        ctl.enqueue("a", _FakeJob("a", 0))
        ctl.enqueue("a", _FakeJob("a", 1))
        with pytest.raises(AdmissionRejected) as excinfo:
            ctl.enqueue("a", _FakeJob("a", 2))
        err = excinfo.value
        assert err.tenant == "a"
        assert err.queue_depth == 2
        assert err.retry_after_s > 0.0
        assert ctl.total_rejected == 1
        assert ctl.total_admitted == 2

    def test_retry_after_scales_with_observed_durations(self):
        ctl = AdmissionController(max_queue_depth=1)
        ctl.register("a", 1)
        ctl.enqueue("a", _FakeJob("a", 0))
        ctl.observe_duration(2.0)
        with pytest.raises(AdmissionRejected) as excinfo:
            ctl.enqueue("a", _FakeJob("a", 1))
        assert excinfo.value.retry_after_s == pytest.approx(2.0)

    def test_unknown_tenant_raises(self):
        ctl = AdmissionController()
        with pytest.raises(ConfigurationError):
            ctl.enqueue("ghost", _FakeJob("ghost", 0))

    def test_remove_cancelled_queued_job(self):
        ctl = self._saturated({"a": 1}, depth=3)
        target = ctl.next_job()
        ctl.requeue_front(target)
        assert ctl.remove(target)
        assert not ctl.remove(target)
        assert ctl.queue_depth("a") == 2


# ----------------------------------------------------------------------
# Service lifecycle: submit / status / result / cancel / drain
# ----------------------------------------------------------------------


class TestServiceLifecycle:
    def test_submit_result_roundtrip(self):
        svc = _service()
        job_id = _submit_app(svc, "bitflip", "alice")
        outcome = svc.result(job_id, timeout_s=30.0)
        assert outcome.ledger.total_s > 0.0
        row = svc.status(job_id)
        assert row["state"] == COMPLETED
        assert row["tenant"] == "alice"
        report = svc.drain()
        assert validate_service_report(report) == []
        assert report["pool"]["in_use"] == {GPU: 0, FPGA: 0}

    def test_unknown_job_id_raises(self):
        svc = _service()
        with pytest.raises(ConfigurationError):
            svc.status("job-9999")

    def test_result_timeout_is_typed_not_a_failure(self):
        # Hold the only running slot so the job stays queued, then ask
        # for its result with a zero budget: the wait must surface the
        # typed JobResultTimeout (job id + observed state), and the
        # job itself must be untouched — it completes normally once
        # the slot frees up.
        svc = _service(max_running=1)
        with svc._lock:
            svc._running = 1
        job_id = _submit_app(svc, "bitflip", "alice")
        with pytest.raises(JobResultTimeout) as excinfo:
            svc.result(job_id, timeout_s=0.0)
        err = excinfo.value
        assert err.job_id == job_id
        assert err.state == "queued"
        assert err.timeout_s == 0.0
        assert svc.status(job_id)["state"] == "queued"
        with svc._lock:
            svc._running = 0
        svc._dispatch()
        outcome = svc.result(job_id, timeout_s=30.0)
        assert outcome.ledger.total_s > 0.0
        assert svc.status(job_id)["state"] == COMPLETED

    def test_deadline_expired_job_never_acquires_a_lease(self):
        # deadline_s=0 expires immediately: dispatch must finish the
        # job CANCELLED before touching the pool.
        svc = _service()
        job_id = _submit_app(
            svc, "bitflip", "alice", deadline_s=0.0
        )
        with pytest.raises(JobCancelledError) as excinfo:
            svc.result(job_id, timeout_s=10.0)
        err = excinfo.value
        assert err.reason == "deadline"
        assert err.job_id == job_id
        assert err.tenant == "alice"
        assert svc.status(job_id)["state"] == CANCELLED
        snap = svc.pool.snapshot()
        assert snap["granted"] == 0
        assert snap["in_use"] == {GPU: 0, FPGA: 0}

    def test_deadline_on_fake_clock_cancels_queued_job(self):
        # A queued job whose deadline passes (on an injected clock)
        # while it waits is cancelled at the next dispatch, before it
        # leases anything.
        tick = [100.0]
        svc = CoExecutionService(ServiceConfig(
            runtime=RuntimeConfig(scheduler="sequential"),
            max_running=1,
            clock=lambda: tick[0],
        ))
        with svc._lock:
            svc._running = 1  # hold the only running slot
        job_id = _submit_app(
            svc, "bitflip", "alice", deadline_s=5.0
        )
        assert svc.status(job_id)["state"] == "queued"
        tick[0] = 106.0
        with svc._lock:
            svc._running = 0
        svc._dispatch()
        with pytest.raises(JobCancelledError) as excinfo:
            svc.result(job_id, timeout_s=10.0)
        assert excinfo.value.reason == "deadline"
        assert svc.pool.snapshot()["granted"] == 0

    def test_cancel_queued_job(self):
        svc = _service(max_running=1)
        with svc._lock:
            svc._running = 1  # force the next submission to queue
        job_id = _submit_app(svc, "saxpy", "bob")
        assert svc.status(job_id)["state"] == "queued"
        assert svc.cancel(job_id) == CANCELLED
        with pytest.raises(JobCancelledError) as excinfo:
            svc.result(job_id, timeout_s=10.0)
        assert excinfo.value.job_id == job_id
        assert excinfo.value.tenant == "bob"
        assert svc.admission.queue_depth("bob") == 0
        assert svc.pool.snapshot()["granted"] == 0
        with svc._lock:
            svc._running = 0

    def test_cancel_finished_job_is_a_noop(self):
        svc = _service()
        job_id = _submit_app(svc, "bitflip", "alice")
        svc.result(job_id, timeout_s=30.0)
        assert svc.cancel(job_id) == COMPLETED
        assert svc.result(job_id).ledger.total_s > 0.0

    def test_cancel_racing_a_running_job_leaks_nothing(self):
        # The cancel may land before, during, or after the run — all
        # three must terminate promptly with zero leases held.
        svc = _service()
        job_id = _submit_app(svc, "mandelbrot", "alice")
        svc.cancel(job_id)
        job = svc._job(job_id)
        assert job.done.wait(30.0)
        assert job.state in (COMPLETED, CANCELLED)
        report = svc.drain()
        assert report["pool"]["in_use"] == {GPU: 0, FPGA: 0}
        assert validate_service_report(report) == []

    def test_draining_service_rejects_submissions(self):
        svc = _service()
        _submit_app(svc, "bitflip", "alice")
        svc.drain()
        with pytest.raises(AdmissionRejected) as excinfo:
            _submit_app(svc, "bitflip", "alice")
        assert excinfo.value.reason == "draining"

    def test_queue_depth_rejection_through_service(self):
        svc = _service(max_running=1, max_queue_depth=1)
        with svc._lock:
            svc._running = 1
        _submit_app(svc, "bitflip", "alice")
        with pytest.raises(AdmissionRejected) as excinfo:
            _submit_app(svc, "bitflip", "alice")
        assert excinfo.value.queue_depth == 1
        assert excinfo.value.retry_after_s > 0.0
        with svc._lock:
            svc._running = 0
        svc._dispatch()
        svc.drain()

    def test_compile_error_surfaces_as_typed_job_failure(self):
        svc = _service()
        job_id = svc.submit(
            "this is not lime", "Nope.nope", [], tenant="alice"
        )
        with pytest.raises(LiquidMetalError):
            svc.result(job_id, timeout_s=30.0)
        row = svc.status(job_id)
        assert row["state"] == "failed"
        assert row["error"]["type"]
        report = svc.drain()
        assert validate_service_report(report) == []

    def test_context_manager_drains(self):
        with _service() as svc:
            job_id = _submit_app(svc, "bitflip", "alice")
        assert svc.status(job_id)["state"] == COMPLETED


# ----------------------------------------------------------------------
# Cooperative cancellation inside the runtime
# ----------------------------------------------------------------------


class _TripAfter(CancelToken):
    """Trips itself after N cancellation polls — deterministic
    mid-stage cancellation without wall-clock races."""

    def __init__(self, polls, **kwargs):
        super().__init__(**kwargs)
        self._polls = polls
        self._seen = 0

    def cancelled(self):
        self._seen += 1
        if self._seen > self._polls:
            self.cancel()
        return super().cancelled()


class TestRuntimeCancellation:
    @pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
    def test_pre_cancelled_token_stops_run_immediately(
        self, scheduler
    ):
        from repro.apps import compile_app

        compiled = compile_app("bitflip")
        token = CancelToken(job_id="job-x", tenant="t")
        token.cancel()
        runtime = Runtime(
            compiled,
            RuntimeConfig(scheduler=scheduler),
            cancel_token=token,
        )
        entry, args = workloads.small_args("bitflip")
        with pytest.raises(JobCancelledError) as excinfo:
            runtime.run(entry, args)
        assert excinfo.value.job_id == "job-x"

    @pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
    def test_mid_stage_cancel_unwinds_both_schedulers(
        self, scheduler
    ):
        # Trip after a handful of polls: the token fires *inside* the
        # task loops. The threaded scheduler must drain its queues and
        # join its workers instead of deadlocking on a full FIFO.
        from repro.apps import compile_app

        compiled = compile_app("gray_pipeline")
        token = _TripAfter(2, job_id="job-y", tenant="t")
        runtime = Runtime(
            compiled,
            RuntimeConfig(scheduler=scheduler),
            cancel_token=token,
        )
        entry, args = workloads.small_args("gray_pipeline")
        with pytest.raises(JobCancelledError):
            runtime.run(entry, args)
        assert runtime.shutdown_active(timeout_s=2.0)


# ----------------------------------------------------------------------
# Degradation and cross-job re-promotion (shared breakers)
# ----------------------------------------------------------------------


def _faulty_service(cooldown_s, shared_injector=False):
    plan = FaultPlan(
        [FaultSpec(site="device", error="device", target="*",
                   until_call=1)],
        seed=7,
    )
    if shared_injector:
        # A service-scoped injector: the call counter spans jobs, so
        # "the first device call fails" means the first call the
        # *service* makes — a genuinely transient outage rather than
        # one that re-fires per job.
        from repro.runtime.faults import FaultInjector

        plan = FaultInjector(plan)
    runtime = RuntimeConfig(
        scheduler="sequential",
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=1),
        health=HealthPolicy(
            cooldown_s=cooldown_s,
            probe_batches=2,
            failure_threshold=1,
        ),
        batch_size=16,
    )
    return CoExecutionService(ServiceConfig(
        runtime=runtime, max_running=1
    ))


class TestSharedBreakers:
    def test_breaker_state_is_service_scoped(self):
        # Job 1 trips the gpu breaker (its first device call faults).
        # With a long cool-down the breaker is still OPEN when job 2
        # dispatches: job 2 must lease *without* gpu (degradation) yet
        # still complete with output identical to a cpu-only run.
        svc = _faulty_service(cooldown_s=10.0)
        first = _submit_app(svc, "gray_pipeline", "alice")
        svc.result(first, timeout_s=30.0)
        assert svc.health.family_open(GPU)
        second = _submit_app(svc, "gray_pipeline", "alice")
        svc.result(second, timeout_s=30.0)
        assert GPU not in svc.status(second)["leased"]

        reference = Runtime(
            svc.session.compile_cached(
                SUITE["gray_pipeline"].source,
                filename="<gray_pipeline.lime>",
            ),
            RuntimeConfig(
                scheduler="sequential",
                policy=SubstitutionPolicy(use_accelerators=False),
            ),
        ).run(*workloads.small_args("gray_pipeline"))
        for job_id in (first, second):
            outcome = svc.result(job_id)
            assert outcome.output == reference.output
            assert repr(outcome.value) == repr(reference.value)
        report = svc.drain()
        assert report["health"]["trips"] >= 1
        assert report["pool"]["in_use"] == {GPU: 0, FPGA: 0}

    def test_breaker_repromotes_across_jobs(self):
        # A transient outage in *service* time (shared injector): job
        # 1 trips the breaker and finishes with it still quarantined;
        # later jobs' fallback traffic advances the shared breaker
        # through HALF_OPEN probing back to CLOSED — re-promotion
        # happens across jobs, exactly as it does within one run.
        # Cool-down tuned between one job's fallback traffic (~1.2us
        # of breaker-local simulated time) and two jobs' worth.
        svc = _faulty_service(cooldown_s=2e-6, shared_injector=True)
        first = _submit_app(svc, "gray_pipeline", "alice")
        svc.result(first, timeout_s=30.0)
        assert svc.health.family_open(GPU)
        for _ in range(3):
            job_id = _submit_app(svc, "gray_pipeline", "alice")
            svc.result(job_id, timeout_s=30.0)
        report = svc.drain()
        assert report["health"]["trips"] == 1
        assert report["health"]["repromotions"] >= 1
        assert not svc.health.family_open(GPU)


# ----------------------------------------------------------------------
# Report shape
# ----------------------------------------------------------------------


class TestServiceReport:
    def test_driver_report_validates_and_renders(self):
        report = run_service_driver(
            tenants=2, jobs_per_tenant=2, scheduler="sequential"
        )
        assert validate_service_report(report) == []
        text = render_service_report(report)
        assert "co-execution service" in text
        assert "t0" in text and "t1" in text

    def test_validator_rejects_garbage(self):
        assert validate_service_report([]) != []
        assert validate_service_report({"schema": "nope"}) != []

    def test_validator_flags_leaked_leases(self):
        report = run_service_driver(
            tenants=1, jobs_per_tenant=1, scheduler="sequential"
        )
        report["pool"]["in_use"][GPU] = 1
        problems = validate_service_report(report)
        assert any("leaked" in p for p in problems)

    def test_validator_flags_state_count_mismatch(self):
        report = run_service_driver(
            tenants=1, jobs_per_tenant=1, scheduler="sequential"
        )
        report["totals"]["completed"] += 1
        assert validate_service_report(report) != []

    def test_error_rows_carry_job_and_tenant_context(self):
        svc = _service()
        job_id = _submit_app(
            svc, "bitflip", "carol", deadline_s=0.0
        )
        svc._job(job_id).done.wait(10.0)
        row = svc.status(job_id)
        assert row["error"]["type"] == "JobCancelledError"
        assert row["error"]["job_id"] == job_id
        assert row["error"]["tenant"] == "carol"
        svc.drain()


# ----------------------------------------------------------------------
# CancelToken unit behaviour
# ----------------------------------------------------------------------


class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken(job_id="j", tenant="t")
        assert token.cancel("deadline")
        assert not token.cancel("cancelled")
        assert token.reason == "deadline"

    def test_deadline_on_injected_clock(self):
        tick = [10.0]
        token = CancelToken(
            job_id="j", deadline_s=5.0, clock=lambda: tick[0]
        )
        assert not token.cancelled()
        assert token.remaining_s() == pytest.approx(5.0)
        tick[0] = 15.0
        assert token.cancelled()
        assert token.reason == "deadline"
        assert token.remaining_s() == 0.0

    def test_check_raises_typed_error(self):
        token = CancelToken(job_id="j", tenant="t")
        token.check()  # live token: no-op
        token.cancel()
        with pytest.raises(JobCancelledError) as excinfo:
            token.check()
        assert excinfo.value.job_id == "j"
        assert excinfo.value.tenant == "t"

    def test_thread_safe_single_trip(self):
        token = CancelToken()
        wins = []
        barrier = threading.Barrier(4)

        def racer(reason):
            barrier.wait()
            if token.cancel(reason):
                wins.append(reason)

        threads = [
            threading.Thread(target=racer, args=(f"r{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert token.reason == wins[0]
