"""Concurrent-vs-solo differential for the co-execution service.

Every suite app is submitted by 4 tenants at once through one
long-lived service (shared compiler session, shared health registry,
shared device pool) and each job's output, final value, and simulated
seconds must be bit-identical to a standalone run of the same
compiled program — on both schedulers. Concurrency arbitrates device
*slots*; it must never perturb results or simulated time."""

import pytest

from repro.apps import SUITE, workloads
from repro.runtime import Runtime, RuntimeConfig
from repro.service import (
    COMPLETED,
    CoExecutionService,
    ServiceConfig,
    validate_service_report,
)

TENANTS = ("t0", "t1", "t2", "t3")
APPS = sorted(SUITE)


def _fingerprint(outcome):
    return (
        outcome.output,
        repr(outcome.value),
        outcome.ledger.summary()["total_s"],
    )


@pytest.fixture(scope="module", params=["sequential", "threaded"])
def service_run(request):
    """One service per scheduler: every app submitted by 4 tenants
    concurrently, then drained. Yields per-job fingerprints plus solo
    baselines computed from the same compiled programs."""
    scheduler = request.param
    svc = CoExecutionService(ServiceConfig(
        runtime=RuntimeConfig(scheduler=scheduler),
        max_running=4,
        max_queue_depth=len(APPS),
        gpu_slots=2,
        fpga_slots=1,
    ))
    for index, tenant in enumerate(TENANTS):
        svc.register_tenant(tenant, weight=(index % 3) + 1)
    jobs = {}
    for app in APPS:
        for tenant in TENANTS:
            entry, args = workloads.small_args(app)
            job_id = svc.submit(
                SUITE[app].source,
                entry,
                args,
                tenant=tenant,
                app=app,
                filename=f"<{app}.lime>",
            )
            jobs[job_id] = app
    report = svc.drain()

    solo = {}
    for app in APPS:
        compiled = svc.session.compile_cached(
            SUITE[app].source, filename=f"<{app}.lime>"
        )
        entry, args = workloads.small_args(app)
        outcome = Runtime(
            compiled, RuntimeConfig(scheduler=scheduler)
        ).run(entry, args)
        solo[app] = _fingerprint(outcome)

    concurrent = {
        job_id: (jobs[job_id], _fingerprint(svc.result(job_id)))
        for job_id in jobs
    }
    return scheduler, svc, report, concurrent, solo


class TestServiceDifferential:
    def test_all_jobs_completed(self, service_run):
        _, svc, report, concurrent, _ = service_run
        assert report["totals"]["completed"] == len(concurrent)
        assert report["totals"]["failed"] == 0
        assert report["totals"]["cancelled"] == 0

    def test_every_job_bit_identical_to_solo(self, service_run):
        scheduler, _, _, concurrent, solo = service_run
        mismatches = []
        for job_id, (app, fingerprint) in sorted(concurrent.items()):
            if fingerprint != solo[app]:
                mismatches.append((scheduler, job_id, app))
        assert mismatches == []

    def test_simulated_time_unperturbed_by_concurrency(
        self, service_run
    ):
        # The four concurrent copies of each app must agree with each
        # other too (not just with solo): simulated time is job-local.
        _, _, _, concurrent, _ = service_run
        by_app = {}
        for _job_id, (app, fingerprint) in concurrent.items():
            by_app.setdefault(app, set()).add(fingerprint[2])
        diverging = {
            app: times
            for app, times in by_app.items()
            if len(times) != 1
        }
        assert diverging == {}

    def test_no_leaked_leases_and_valid_report(self, service_run):
        _, svc, report, _, _ = service_run
        assert validate_service_report(report) == []
        assert all(
            used == 0 for used in report["pool"]["in_use"].values()
        )
        assert svc.pool.occupancy() == {
            family: 0 for family in svc.pool.slots
        }

    def test_pool_actually_shared(self, service_run):
        # Sanity that the differential exercised contention: more
        # grants than slots, and the peak hit the configured bound.
        _, _, report, concurrent, _ = service_run
        pool = report["pool"]
        assert pool["granted"] > pool["slots"]["gpu"]
        assert pool["peak"]["gpu"] >= 1

    def test_compile_memo_shared_across_tenants(self, service_run):
        # 4 tenants x N apps but each program compiles once: the
        # service session memoizes by source hash.
        _, svc, _, concurrent, _ = service_run
        assert len(concurrent) == 4 * len(APPS)
        assert len(svc.session._memo) == len(APPS)

    def test_jobs_describe_finished_states(self, service_run):
        _, _, report, _, _ = service_run
        assert all(
            row["state"] == COMPLETED for row in report["jobs"]
        )
