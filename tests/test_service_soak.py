"""Chaos soak: the service under fault injection must never hang.

3 tenants x 8 jobs run through the co-execution service with
``examples/fault_plans/transient_gpu_window.json`` active in every
job's runtime. The contract is *honesty under chaos*: every job
either completes with output and value bit-identical to its
fault-free standalone run (shadow probes keep bytecode
authoritative), or surfaces a typed LiquidMetalError with job/tenant
context — and the whole drain finishes inside a hard wall-clock
bound. Simulated seconds are exempt: retries and bytecode fallbacks
legitimately change modeled time."""

import os
import time

import pytest

from repro.apps import SUITE, workloads
from repro.errors import JobCancelledError, LiquidMetalError
from repro.runtime import (
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    load_fault_plan,
)
from repro.service import (
    COMPLETED,
    CoExecutionService,
    ServiceConfig,
    validate_service_report,
)

PLAN_PATH = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    "examples",
    "fault_plans",
    "transient_gpu_window.json",
)

TENANTS = 3
JOBS_PER_TENANT = 8
SOAK_APPS = (
    "gray_pipeline", "bitflip", "saxpy", "vector_sum",
    "parity", "crc8", "convolution", "running_sum",
)
#: Generous hard bound: simulated runs take milliseconds of wall
#: time; only a hang can approach this.
WALL_BUDGET_S = 300.0


@pytest.fixture(
    scope="module", params=["sequential", "threaded"]
)
def soak(request):
    scheduler = request.param
    plan = load_fault_plan(PLAN_PATH)
    svc = CoExecutionService(ServiceConfig(
        runtime=RuntimeConfig(
            scheduler=scheduler,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2),
            stage_timeout_s=(
                10.0 if scheduler == "threaded" else None
            ),
        ),
        max_running=4,
        max_queue_depth=JOBS_PER_TENANT,
    ))
    started = time.perf_counter()
    jobs = []
    cycle = 0
    for _ in range(JOBS_PER_TENANT):
        for t in range(TENANTS):
            app = SOAK_APPS[cycle % len(SOAK_APPS)]
            cycle += 1
            entry, args = workloads.small_args(app)
            job_id = svc.submit(
                SUITE[app].source,
                entry,
                args,
                tenant=f"t{t}",
                app=app,
                filename=f"<{app}.lime>",
            )
            jobs.append((job_id, app))
    report = svc.drain(timeout_s=WALL_BUDGET_S)
    elapsed = time.perf_counter() - started

    baselines = {}
    for app in {app for _, app in jobs}:
        compiled = svc.session.compile_cached(
            SUITE[app].source, filename=f"<{app}.lime>"
        )
        outcome = Runtime(
            compiled, RuntimeConfig(scheduler=scheduler)
        ).run(*workloads.small_args(app))
        baselines[app] = (outcome.output, repr(outcome.value))
    return svc, report, jobs, baselines, elapsed


class TestChaosSoak:
    def test_finishes_inside_the_wall_budget(self, soak):
        _, _, _, _, elapsed = soak
        assert elapsed < WALL_BUDGET_S

    def test_every_job_completed_or_failed_typed(self, soak):
        svc, _, jobs, baselines, _ = soak
        bad = []
        for job_id, app in jobs:
            row = svc.status(job_id)
            if row["state"] == COMPLETED:
                outcome = svc.result(job_id)
                if (
                    outcome.output,
                    repr(outcome.value),
                ) != baselines[app]:
                    bad.append((job_id, app, "diverged"))
            else:
                try:
                    svc.result(job_id, timeout_s=1.0)
                    bad.append((job_id, app, "no error raised"))
                except JobCancelledError:
                    bad.append((job_id, app, "spurious cancel"))
                except LiquidMetalError as exc:
                    if exc.job_id != job_id:
                        bad.append((job_id, app, "missing job_id"))
                    if not getattr(exc, "tenant", None):
                        bad.append((job_id, app, "missing tenant"))
        assert bad == []

    def test_faults_actually_fired(self, soak):
        # The soak is vacuous if the plan never injected: the
        # transient window guarantees at least the first device call
        # of each job's injector faulted (absorbed by retry or
        # surfaced — either way the supervisor saw traffic).
        svc, report, jobs, _, _ = soak
        assert report["totals"]["jobs"] == TENANTS * JOBS_PER_TENANT
        assert report["totals"]["completed"] >= 1

    def test_no_leaked_leases_under_chaos(self, soak):
        svc, report, _, _, _ = soak
        assert validate_service_report(report) == []
        assert all(
            used == 0 for used in report["pool"]["in_use"].values()
        )
        assert svc.pool.occupancy() == {
            family: 0 for family in svc.pool.slots
        }

    def test_breakers_left_consistent(self, soak):
        # Shared breakers end in a legal state and the health section
        # of the report agrees with the registry.
        svc, report, _, _, _ = soak
        for breaker in svc.health.breakers():
            assert breaker.state in ("closed", "open", "half_open")
        assert report["health"]["breakers"] == len(
            list(svc.health.breakers())
        )
