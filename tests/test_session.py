"""CompilerSession: the cache-aware toolchain entry point.

Pins the api_redesign contract: sessions compile identically to the
legacy ``compile_program`` shim, warm starts skip backend codegen
entirely (no ``compile.backend.*`` spans), ``read`` mode consumes a
harvested cache without writing back, provenance is stamped on the
store and surfaced by both schedulers' stage spans, and ``harvest``
produces a verified ``repro.harvest/1`` report.
"""

import warnings

import pytest

from repro.apps import SUITE
from repro.backends.artifacts import ArtifactCache, CacheOptions
from repro.compiler import (
    CompileOptions,
    CompilerSession,
    compile_program,
    compile_report,
)
from repro.errors import ConfigurationError
from repro.obs import Tracer

BITFLIP = SUITE["bitflip"].source


def _rw_options(tmp_path, **cache_overrides):
    cache_overrides.setdefault("mode", "readwrite")
    return CompileOptions(
        cache=CacheOptions(
            cache_dir=str(tmp_path / "cache"), **cache_overrides
        )
    )


class TestSessionBasics:
    def test_uncached_session_matches_compile_program(self):
        via_session = CompilerSession().compile(BITFLIP)
        via_shim = compile_program(BITFLIP)
        assert via_session.store.provenance == "cold"
        assert len(via_session.store) == len(via_shim.store)
        assert [a.artifact_id for a in via_session.store.all()] == [
            a.artifact_id for a in via_shim.store.all()
        ]
        assert (
            via_session.bytecode_program.disassemble()
            == via_shim.bytecode_program.disassemble()
        )

    def test_default_session_has_no_cache(self):
        session = CompilerSession()
        assert session.cache is None
        result = session.compile(BITFLIP)
        assert all(
            info["state"] == "off" for info in result.cache_info.values()
        )
        assert not result.warm

    def test_cache_operations_require_a_cache(self):
        session = CompilerSession()
        with pytest.raises(ConfigurationError, match="no artifact cache"):
            session.cache_stats()
        with pytest.raises(ConfigurationError, match="no artifact cache"):
            session.harvest()

    def test_shim_options_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_program(BITFLIP, options=CompileOptions())

    def test_shim_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            compile_program(BITFLIP, enable_fpga=False)


class TestWarmStart:
    def test_cold_then_warm(self, tmp_path):
        options = _rw_options(tmp_path)
        cold = CompilerSession(options).compile(BITFLIP)
        assert cold.store.provenance == "cold"
        assert not cold.warm
        assert {i["state"] for i in cold.cache_info.values()} == {"miss"}

        # A *fresh* session against the same directory warm-starts.
        warm = CompilerSession(options).compile(BITFLIP)
        assert warm.store.provenance == "warm"
        assert warm.warm
        assert {i["state"] for i in warm.cache_info.values()} == {"hit"}
        assert [a.artifact_id for a in warm.store.all()] == [
            a.artifact_id for a in cold.store.all()
        ]
        # Warm loads are modeled as dramatically cheaper than codegen.
        assert warm.modeled_compile_s < cold.modeled_compile_s

    def test_warm_start_skips_backend_codegen(self, tmp_path):
        options = _rw_options(tmp_path)
        CompilerSession(options).compile(BITFLIP)
        tracer = Tracer()
        session = CompilerSession(options.replace(tracer=tracer))
        result = session.compile(BITFLIP)
        assert result.warm
        assert tracer.find_prefix("compile.backend") == [], (
            "a warm start must not invoke backend codegen at all"
        )
        assert len(tracer.find("cache.load")) == 3
        assert tracer.counters.get("cache.hit") == 3
        assert tracer.counters.get("cache.miss") == 0
        compile_span = tracer.find("compile")[0]
        assert compile_span.attributes["artifact_source"] == "warm"

    def test_warm_backends_are_stubs(self, tmp_path):
        options = _rw_options(tmp_path)
        CompilerSession(options).compile(BITFLIP)
        warm = CompilerSession(options).compile(BITFLIP)
        assert warm.gpu_backend.cached
        assert warm.fpga_backend.cached
        assert warm.gpu_backend.artifacts

    def test_mixed_provenance(self, tmp_path):
        options = _rw_options(tmp_path)
        CompilerSession(options.replace(enable_fpga=False)).compile(BITFLIP)
        mixed = CompilerSession(options).compile(BITFLIP)
        # bytecode+opencl hit, verilog misses: provenance is "mixed".
        assert mixed.store.provenance == "mixed"
        assert mixed.cache_info["bytecode"]["state"] == "hit"
        assert mixed.cache_info["verilog"]["state"] == "miss"
        assert not mixed.warm

    def test_option_change_is_a_miss(self, tmp_path):
        options = _rw_options(tmp_path)
        CompilerSession(options).compile(BITFLIP)
        repipelined = CompilerSession(
            options.replace(fpga_pipelined=True)
        ).compile(BITFLIP)
        assert repipelined.cache_info["verilog"]["state"] == "miss"
        assert repipelined.cache_info["bytecode"]["state"] == "hit"
        assert repipelined.cache_info["opencl"]["state"] == "hit"

    def test_read_mode_consumes_without_writing(self, tmp_path):
        rw = _rw_options(tmp_path)
        CompilerSession(rw).compile(BITFLIP)
        stored = set(ArtifactCache(rw.cache).keys())

        ro = rw.replace(cache=rw.cache.replace(mode="read"))
        saxpy = SUITE["saxpy"].source
        miss = CompilerSession(ro).compile(saxpy)
        assert {i["state"] for i in miss.cache_info.values()} == {"miss"}
        # The misses were NOT written back.
        assert set(ArtifactCache(rw.cache).keys()) == stored
        # But existing entries still serve hits.
        hit = CompilerSession(ro).compile(BITFLIP)
        assert hit.warm

    def test_report_shows_artifact_source(self, tmp_path):
        options = _rw_options(tmp_path)
        CompilerSession(options).compile(BITFLIP)
        warm = CompilerSession(options).compile(BITFLIP)
        report = compile_report(warm)
        assert "artifact source: warm" in report
        cold_report = compile_report(CompilerSession().compile(BITFLIP))
        assert "artifact source" not in cold_report


class TestProvenanceAtRuntime:
    @pytest.mark.parametrize("scheduler", ["sequential", "threaded"])
    def test_stage_spans_carry_artifact_source(self, tmp_path, scheduler):
        from repro.runtime import Runtime, RuntimeConfig

        options = _rw_options(tmp_path)
        CompilerSession(options).compile(BITFLIP)
        warm = CompilerSession(options).compile(BITFLIP)
        tracer = Tracer()
        runtime = Runtime(
            warm, RuntimeConfig(scheduler=scheduler, tracer=tracer)
        )
        entry, args = SUITE["bitflip"].default_args()
        runtime.run(entry, args)
        stages = tracer.find("run.graph.stage")
        assert stages, "expected stage spans from the traced run"
        assert all(
            s.attributes.get("artifact_source") == "warm" for s in stages
        )


class TestHarvest:
    def test_harvest_two_apps(self, tmp_path):
        options = _rw_options(tmp_path)
        session = CompilerSession(options)
        report = session.harvest(apps=["bitflip", "saxpy"])
        assert report["schema"] == "repro.harvest/1"
        assert sorted(report["apps"]) == ["bitflip", "saxpy"]
        totals = report["totals"]
        assert totals["all_warm"], "every backend must warm-start"
        assert totals["modeled_cold_s"] > totals["modeled_warm_s"] > 0
        assert totals["modeled_speedup"] >= 5.0
        for record in report["apps"].values():
            assert record["warm"]
            assert record["payload_bytes"] > 0
            assert set(record["backends"]) == {
                "bytecode", "opencl", "verilog",
            }

    def test_harvest_rejects_unknown_apps(self, tmp_path):
        session = CompilerSession(_rw_options(tmp_path))
        with pytest.raises(ConfigurationError, match="unknown suite apps"):
            session.harvest(apps=["not_an_app"])

    def test_harvest_pin(self, tmp_path):
        options = _rw_options(tmp_path)
        session = CompilerSession(options)
        session.harvest(apps=["bitflip"], verify=False, pin=True)
        assert len(session.cache.pinned()) == 3
        stats = session.cache_stats()
        assert stats["entry_count"] == 3
