"""Tests for stateful tasks (Section 2.1: isolating constructors).

"Stateful instance methods are also candidates for co-execution if they
are local and the object instance is constructed using an isolating
constructor: a local constructor with value arguments. Unlike pure
methods which provide data-parallelism, stateful methods require the
exploitation of pipeline-parallelism."
"""

import itertools

import pytest

from repro.apps import SUITE, compile_app
from repro.compiler import compile_program
from repro.errors import IsolationError, LimeTypeError
from repro.lime import analyze
from repro.runtime import Runtime, RuntimeConfig
from repro.values import KIND_INT, ValueArray


class TestChecking:
    def test_running_sum_checks(self):
        analyze(SUITE["running_sum"].source)

    def test_isolating_constructor_required(self):
        source = """
        public class Acc {
            int sum;
            Acc(int s) { this.sum = s; }   // NOT local: not isolating
            local int add(int x) { sum += x; return sum; }
        }
        class T {
            static void m(int[[]] xs, int[] out) {
                var a = new Acc(0);
                var t = xs.source(1) => task a.add => out.sink();
                t.finish();
            }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_constructor_with_mutable_arg_not_isolating(self):
        source = """
        public class Acc {
            int sum;
            local Acc(int[] seed) { this.sum = seed[0]; }
            local int add(int x) { sum += x; return sum; }
        }
        class T {
            static void m(int[[]] xs, int[] out, int[] seed) {
                var a = new Acc(seed);
                var t = xs.source(1) => task a.add => out.sink();
                t.finish();
            }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_instance_method_must_be_local(self):
        source = """
        public class Acc {
            int sum;
            local Acc(int s) { this.sum = s; }
            int add(int x) { sum += x; return sum; }   // global
        }
        class T {
            static void m(int[[]] xs, int[] out) {
                var a = new Acc(0);
                var t = xs.source(1) => task a.add => out.sink();
                t.finish();
            }
        }
        """
        with pytest.raises(IsolationError):
            analyze(source)

    def test_static_task_on_instance_method_hint(self):
        source = """
        public class Acc {
            int sum;
            local Acc(int s) { this.sum = s; }
            local int add(int x) { sum += x; return sum; }
        }
        class T {
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => task Acc.add => out.sink();
                t.finish();
            }
        }
        """
        with pytest.raises(LimeTypeError):
            analyze(source)


class TestExecution:
    def run_sums(self, xs, scheduler="threaded"):
        compiled = compile_app("running_sum")
        runtime = Runtime(compiled, RuntimeConfig(scheduler=scheduler))
        arr = ValueArray(KIND_INT, xs)
        return list(runtime.call("RunningSum.compute", [arr]))

    def test_prefix_sums(self):
        xs = [3, -1, 4, 1, 5]
        assert self.run_sums(xs) == list(itertools.accumulate(xs))

    def test_order_preserved_under_threading(self):
        xs = list(range(100))
        assert self.run_sums(xs, "threaded") == list(
            itertools.accumulate(xs)
        )

    def test_sequential_scheduler_agrees(self):
        xs = [7, 7, 7, 7]
        assert self.run_sums(xs, "sequential") == [7, 14, 21, 28]

    def test_state_fresh_per_graph_execution(self):
        # Each call to compute() constructs a new Accumulator, so the
        # running sum restarts.
        assert self.run_sums([5]) == [5]
        assert self.run_sums([5]) == [5]


class TestBackendExclusion:
    def test_stateful_stage_excluded_everywhere(self):
        compiled = compile_app("running_sum")
        # No GPU or FPGA artifact may exist for the stateful stage.
        graph = compiled.task_graphs[0]
        add_stage = graph.stages[1]
        assert add_stage.stateful
        assert compiled.store.for_task(add_stage.task_id) == [
            compiled.bytecode_artifact
        ]
        reasons = {
            e.device: e.reason
            for e in compiled.store.exclusions
            if e.task_id == add_stage.task_id
        }
        assert "stateful" in reasons["gpu"]
        assert "stateful" in reasons["fpga"]

    def test_no_substitution_happens(self):
        compiled = compile_app("running_sum")
        runtime = Runtime(compiled)
        arr = ValueArray(KIND_INT, [1, 2, 3])
        runtime.call("RunningSum.compute", [arr])
        _, decisions = runtime.substitution_log[0]
        assert decisions == []
