"""Whole-suite accelerated-vs-bytecode equivalence at reduced sizes.

The deepest end-to-end invariant of the reproduction: for every
application, the co-executing configuration produces exactly the value
the pure-bytecode configuration produces (bit-identical — float math
round-trips through binary32 on both paths).

The metrics-registry sweep rides along: the ``marshal.crossings``
counter must be identical between the two scheduler variants (the
schedulers reorder work, never the boundary traffic), and fusion must
strictly reduce it on the fusable apps while leaving every other app's
count untouched (docs/FUSION.md)."""

import pytest

from repro.apps import SUITE, compile_app, workloads
from repro.compiler import CompileOptions
from repro.ir.fusion import FusionOptions
from repro.obs import Tracer
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

# Reduced workloads so the whole sweep stays fast.
SMALL_ARGS = {
    "bitflip": lambda: workloads.bitflip_args(64),
    "saxpy": lambda: workloads.saxpy_args(128),
    "vector_sum": lambda: workloads.vector_sum_args(128),
    "black_scholes": lambda: workloads.black_scholes_args(96),
    "mandelbrot": lambda: workloads.mandelbrot_args(16, 8, 16),
    "nbody": lambda: workloads.nbody_args(32),
    "matmul": lambda: workloads.matmul_args(8),
    "convolution": lambda: workloads.convolution_args(128, 5),
    "dct8x8": lambda: workloads.dct_args(8, 8),
    "kmeans": lambda: workloads.kmeans_args(96, 4),
    "gray_pipeline": lambda: workloads.gray_pipeline_args(96),
    "crc8": lambda: workloads.crc8_args(96),
    "parity": lambda: workloads.parity_args(96),
    "hybrid": lambda: workloads.hybrid_args(96, 48),
    "running_sum": lambda: workloads.running_sum_args(48),
    "sobel": lambda: workloads.sobel_args(12, 8),
    "photo_pipeline": lambda: workloads.photo_pipeline_args(128),
}

# Apps where the fusion pass finds a legal multi-stage group at these
# workload sizes (docs/FUSION.md): the stream pipeline fuses at the
# task-graph level, the chained map pair at the IR level.
FUSABLE = {"gray_pipeline", "photo_pipeline"}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_accelerated_equals_bytecode(name):
    assert name in SMALL_ARGS, f"add a small workload for {name}"
    entry, args = SMALL_ARGS[name]()
    compiled = compile_app(name)
    accelerated = Runtime(compiled).run(entry, args)
    plain = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    assert accelerated.value == plain.value, name


@pytest.mark.parametrize("name", sorted(SUITE))
def test_adaptive_policy_equals_bytecode(name):
    entry, args = SMALL_ARGS[name]()
    compiled = compile_app(name)
    adaptive = Runtime(
        compiled, RuntimeConfig(policy=SubstitutionPolicy(adaptive=True))
    ).run(entry, args)
    plain = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    assert adaptive.value == plain.value, name


def _crossings(compiled, entry, args, scheduler, fusion="auto"):
    """Run once under a fresh tracer; return the uniform boundary
    crossing count (every marshaling path funnels through it)."""
    tracer = Tracer()
    Runtime(
        compiled,
        RuntimeConfig(scheduler=scheduler, tracer=tracer, fusion=fusion),
    ).run(entry, args)
    return tracer.counters.snapshot().get("marshal.crossings", 0)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_crossing_count_scheduler_invariant(name):
    """The schedulers reorder work, never the boundary traffic: both
    must cross the marshaling boundary exactly as often."""
    entry, args = SMALL_ARGS[name]()
    compiled = compile_app(name)
    sequential = _crossings(compiled, entry, args, "sequential")
    threaded = _crossings(compiled, entry, args, "threaded")
    assert sequential == threaded, name


@pytest.mark.parametrize("name", sorted(SUITE))
def test_fusion_strictly_reduces_crossings(name):
    """Fused runs cross the boundary strictly less often on the
    fusable apps; everywhere else fusion must not change traffic."""
    entry, args = SMALL_ARGS[name]()
    unfused = _crossings(
        compile_app(name), entry, args, "sequential", fusion="off"
    )
    fused = _crossings(
        compile_app(
            name, CompileOptions(fusion=FusionOptions(mode="auto"))
        ),
        entry,
        args,
        "sequential",
    )
    if name in FUSABLE:
        assert fused < unfused, name
    else:
        assert fused == unfused, name
