"""Unit tests for the retry policy, supervisor, and stage watchdog."""

import time

import pytest

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceTimeoutError,
    MarshalingError,
    RetryExhaustedError,
    RuntimeGraphError,
)
from repro.obs import Tracer
from repro.runtime.graph import Pipeline
from repro.runtime.scheduler import SequentialScheduler, ThreadedScheduler
from repro.runtime.supervisor import RetryPolicy, Supervisor
from repro.runtime.tasks import (
    ExecutionContext,
    SinkTask,
    SourceTask,
    Task,
)
from repro.runtime.timing import TimingLedger
from repro.values import KIND_INT, MutableArray, ValueArray


class _StubEngine:
    """Just enough engine for ExecutionContext in scheduler tests."""

    config = None

    def __init__(self):
        self.ledger = TimingLedger()

    def metered_call(self, method, args):
        return args[0], 10


def make_ctx():
    engine = _StubEngine()
    return ExecutionContext(engine, engine.ledger.new_graph_run("g"))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_ratio=2.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=-1.0)

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(
            base_backoff_s=1e-3,
            backoff_multiplier=2.0,
            max_backoff_s=3e-3,
            jitter_ratio=0.0,
        )
        assert policy.backoff_s(1, 0.5) == pytest.approx(1e-3)
        assert policy.backoff_s(2, 0.5) == pytest.approx(2e-3)
        assert policy.backoff_s(3, 0.5) == pytest.approx(3e-3)  # capped
        assert policy.backoff_s(4, 0.5) == pytest.approx(3e-3)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_backoff_s=1e-3, jitter_ratio=0.1)
        low = policy.backoff_s(1, 0.0)
        high = policy.backoff_s(1, 1.0)
        assert low == pytest.approx(0.9e-3)
        assert high == pytest.approx(1.1e-3)

    def test_retryability_per_error_class(self):
        policy = RetryPolicy()
        assert policy.is_retryable(DeviceError("x"))
        assert policy.is_retryable(MarshalingError("x"))
        assert not policy.is_retryable(DeviceTimeoutError("x"))
        assert not policy.is_retryable(ValueError("x"))
        strict = RetryPolicy(retry_device_errors=False)
        assert not strict.is_retryable(DeviceError("x"))


class TestSupervisor:
    def test_success_needs_no_retry(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=3))
        assert supervisor.run(
            lambda: 42, task_id="t", device="gpu"
        ) == 42
        assert supervisor.total_backoff_s == 0.0

    def test_transient_failure_retried_to_success(self):
        tracer = Tracer()
        supervisor = Supervisor(RetryPolicy(max_attempts=3), tracer=tracer)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeviceError("transient")
            return "ok"

        assert supervisor.run(flaky, task_id="t", device="gpu") == "ok"
        assert len(calls) == 3
        assert tracer.counters.get("retry.attempt") == 2
        assert len(tracer.find("retry.attempt")) == 2

    def test_exhaustion_without_fallback_raises(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=2))

        def broken():
            raise DeviceError("permanent")

        with pytest.raises(RetryExhaustedError) as err:
            supervisor.run(broken, task_id="t:x", device="fpga")
        assert err.value.task_id == "t:x"
        assert err.value.device == "fpga"
        assert err.value.attempts == 2
        assert isinstance(err.value.__cause__, DeviceError)

    def test_exhaustion_with_fallback_demotes(self):
        tracer = Tracer()
        supervisor = Supervisor(RetryPolicy(max_attempts=2), tracer=tracer)
        demoted = []

        result = supervisor.run(
            lambda: (_ for _ in ()).throw(DeviceError("dead")),
            task_id="t:x",
            device="gpu",
            fallback=lambda: "bytecode-result",
            covered_task_ids=["t:a", "t:b"],
            on_demote=lambda record, error: demoted.append(record),
        )
        assert result == "bytecode-result"
        assert len(supervisor.demotions) == 1
        record = supervisor.demotions[0]
        assert record.covered_task_ids == ["t:a", "t:b"]
        assert record.attempts == 2
        assert demoted == [record]
        assert tracer.counters.get("demotion.taken") == 1
        assert tracer.counters.get("demotion.taken[gpu]") == 1
        assert len(tracer.find("demotion.taken")) == 1

    def test_timeout_demotes_without_retry(self):
        tracer = Tracer()
        supervisor = Supervisor(RetryPolicy(max_attempts=5), tracer=tracer)
        calls = []

        def stalled():
            calls.append(1)
            raise DeviceTimeoutError("hung", task_id="t", device="gpu")

        result = supervisor.run(
            stalled, task_id="t", device="gpu", fallback=lambda: "cpu"
        )
        assert result == "cpu"
        assert len(calls) == 1  # no retry for a hang
        assert tracer.counters.get("retry.attempt") == 0

    def test_non_lime_errors_propagate(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=3))

        def bug():
            raise ZeroDivisionError("a real bug, not a device fault")

        with pytest.raises(ZeroDivisionError):
            supervisor.run(bug, task_id="t", device="gpu")

    def test_backoff_deterministic_under_seed(self):
        def total(seed):
            supervisor = Supervisor(
                RetryPolicy(max_attempts=4, seed=seed)
            )
            with pytest.raises(RetryExhaustedError):
                supervisor.run(
                    lambda: (_ for _ in ()).throw(DeviceError("x")),
                    task_id="t",
                    device="gpu",
                )
            return supervisor.total_backoff_s

        assert total(1) == total(1)
        assert total(1) != total(2)


class _StallingTask(Task):
    """A middle stage that hangs on the wall clock."""

    kind = "filter"
    device = "gpu"

    def __init__(self, stall_s):
        super().__init__("t:stall")
        self.stall_s = stall_s

    def run(self, ctx):
        from repro.runtime.queues import END_OF_STREAM

        time.sleep(self.stall_s)
        while True:
            item = self.input_conn.get()
            if item is END_OF_STREAM:
                break
            self.output_conn.put(item)
        self.output_conn.close()


class TestStageWatchdog:
    def _pipeline(self, stall_s):
        source = SourceTask(ValueArray(KIND_INT, [1, 2, 3]), 1, "t:src")
        stall = _StallingTask(stall_s)
        sink = SinkTask(MutableArray.allocate(KIND_INT, 3), "t:sink")
        return Pipeline([source, stall, sink])

    def test_stalled_stage_trips_watchdog(self):
        scheduler = ThreadedScheduler(stage_timeout_s=0.05)
        pipeline = self._pipeline(stall_s=30.0)
        scheduler.start(pipeline, make_ctx())
        with pytest.raises(DeviceTimeoutError) as err:
            scheduler.join(pipeline)
        assert err.value.task_id == "t:stall"
        assert err.value.device == "gpu"
        assert pipeline.failed

    def test_fast_stages_pass_watchdog(self):
        scheduler = ThreadedScheduler(stage_timeout_s=5.0)
        pipeline = self._pipeline(stall_s=0.0)
        scheduler.run_to_completion(pipeline, make_ctx())
        assert pipeline.started and not pipeline.failed

    def test_watchdog_disabled_by_default(self):
        scheduler = ThreadedScheduler()
        assert scheduler.stage_timeout_s is None

    def test_join_unstarted_names_graph(self):
        scheduler = ThreadedScheduler()
        pipeline = self._pipeline(stall_s=0.0)
        with pytest.raises(RuntimeGraphError) as err:
            scheduler.join(pipeline)
        assert "source(1)" in str(err.value)

    def test_sequential_join_unstarted_names_graph(self):
        scheduler = SequentialScheduler()
        pipeline = self._pipeline(stall_s=0.0)
        with pytest.raises(RuntimeGraphError) as err:
            scheduler.join(pipeline)
        assert "source(1)" in str(err.value)
