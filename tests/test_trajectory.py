"""The performance trajectory tracker (docs/TRAJECTORY.md).

Covers the ``repro.bench/1`` envelope, legacy-report flattening,
snapshot collection/storage/validation, the direction-aware diff
classifier (improvement vs regression vs within-threshold, higher- vs
lower-is-better, added/removed metrics), the trend report, and the CI
gate — including the acceptance-criteria case: a synthetic snapshot
with a >10% critical-path regression must fail the gate, and a blessed
waiver must move it out of the failure set.

The golden trend report under ``tests/golden/trajectory/`` freezes the
renderer; regenerate intentionally with::

    REPRO_REGEN_TRAJECTORY_GOLDEN=1 PYTHONPATH=src:. \\
        python -m pytest tests/test_trajectory.py
"""

import json
import os

import pytest

from repro.obs.trajectory import (
    BENCH_SCHEMA,
    TRAJECTORY_SCHEMA,
    add_waivers,
    bench_envelope,
    bench_metric,
    changelog_entries,
    collect_snapshot,
    diff_snapshots,
    flatten_legacy_metrics,
    gate_snapshots,
    git_metadata,
    render_diff,
    render_trend,
    save_snapshot,
    snapshot_metrics,
    trend_report,
    validate_bench,
    validate_trajectory,
    validate_trajectory_file,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "trajectory")
REGEN = os.environ.get("REPRO_REGEN_TRAJECTORY_GOLDEN") == "1"


def make_snapshot(
    seq=1,
    label="",
    metrics=None,
    simulated=None,
    counters=None,
    waivers=None,
):
    """A minimal valid repro.trajectory/1 snapshot with fixed git
    identity (goldens must not depend on the checkout)."""
    return {
        "schema": TRAJECTORY_SCHEMA,
        "label": label,
        "seq": seq,
        "git": {
            "sha": "f" * 40,
            "short_sha": "fffffff",
            "branch": "main",
            "commit_date": "2026-01-01T00:00:00+00:00",
            "dirty": False,
        },
        "config": {
            "store_provenance": "cold",
            "fusion": "auto",
            "specialize": "off",
            "scheduler": "sequential",
            "seed_state": {"pythonhashseed": "unset",
                           "fault_plan_seed": None},
        },
        "benches": {
            "demo": {
                "source": "BENCH_demo.json",
                "envelope": True,
                "metrics": metrics if metrics is not None else {},
            }
        },
        "profiles": {
            "app": {
                "app": "app",
                "entry": "App.main",
                "scheduler": "sequential",
                "store_provenance": "cold",
                "fusion_mode": "auto",
                "specialize_enabled": False,
                "simulated": simulated if simulated is not None else {},
                "counters": counters if counters is not None else {},
                "critical_path": {
                    "bottleneck": "run.offload",
                    "bottleneck_percent": 50.0,
                    "segment_names": ["run", "run.offload"],
                },
            }
        },
        "waivers": waivers if waivers is not None else [],
    }


class TestBenchEnvelope:
    def test_metric_validates_direction_and_kind(self):
        assert bench_metric(2.0)["direction"] == "higher"
        assert bench_metric(1.0, kind="wall")["kind"] == "wall"
        with pytest.raises(ValueError):
            bench_metric(1.0, direction="sideways")
        with pytest.raises(ValueError):
            bench_metric(1.0, kind="guessed")

    def test_envelope_shape_and_legacy_merge(self):
        payload = bench_envelope(
            "demo",
            {"x.speedup": bench_metric(3.0, unit="x")},
            legacy={"apps": {"a": 1}},
        )
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["bench"] == "demo"
        assert payload["apps"] == {"a": 1}  # legacy keys survive
        assert "sha" in payload["git"]
        assert validate_bench(payload) == []

    def test_validate_rejects_bad_metrics(self):
        payload = bench_envelope("demo", {})
        payload["metrics"]["bad"] = {"value": "fast", "direction": "up"}
        problems = validate_bench(payload)
        assert any("value must be a number" in p for p in problems)
        assert any("direction" in p for p in problems)

    def test_git_metadata_degrades_outside_git(self, tmp_path):
        meta = git_metadata(repo_dir=str(tmp_path))
        assert meta["sha"] == "unknown"
        assert meta["dirty"] is False


class TestLegacyFlattening:
    def test_direction_inference(self):
        flat = flatten_legacy_metrics(
            {
                "stream": {
                    "per_element_s": 0.5,
                    "throughput_improvement_at_64": 9.0,
                    "items": 1000,
                },
                "crossings": 4,
                "cold_wall_s": 1.25,
            }
        )
        assert flat["stream.per_element_s"]["direction"] == "lower"
        direction = flat["stream.throughput_improvement_at_64"]["direction"]
        assert direction == "higher"
        assert flat["crossings"]["direction"] == "lower"
        assert flat["cold_wall_s"]["kind"] == "wall"
        # "items" is unclassifiable: skipped, never gates.
        assert "stream.items" not in flat


class TestCollectAndStore:
    def _write_bench(self, path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh)

    def test_collect_aggregates_envelope_and_legacy(self, tmp_path):
        self._write_bench(
            tmp_path / "BENCH_new.json",
            bench_envelope("new", {"m.speedup": bench_metric(2.0)}),
        )
        self._write_bench(
            tmp_path / "BENCH_old.json", {"total_s": 1.5, "items": 3}
        )
        snapshot = collect_snapshot(str(tmp_path), run_profiles=False)
        assert validate_trajectory(snapshot) == []
        assert snapshot["benches"]["new"]["envelope"] is True
        assert snapshot["benches"]["old"]["envelope"] is False
        assert "total_s" in snapshot["benches"]["old"]["metrics"]
        config = snapshot["config"]
        assert config["store_provenance"] in ("cold", "warm", "mixed")
        assert config["fusion"] and config["specialize"]
        assert "pythonhashseed" in config["seed_state"]

    def test_collect_refuses_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_snapshot(str(tmp_path), run_profiles=False)

    def test_save_and_reload_sequence(self, tmp_path):
        changelog = tmp_path / "changelogs"
        first = save_snapshot(make_snapshot(), str(changelog))
        second = save_snapshot(make_snapshot(), str(changelog))
        assert os.path.basename(first).startswith("0001-")
        assert os.path.basename(second).startswith("0002-")
        entries = changelog_entries(str(changelog))
        assert [p["seq"] for _, p in entries] == [1, 2]
        assert validate_trajectory_file(first)["seq"] == 1

    def test_validate_catches_problems(self):
        bad = make_snapshot()
        bad["schema"] = "nope/9"
        del bad["config"]["fusion"]
        bad["waivers"] = [{"metric": "x"}]  # no reason
        problems = validate_trajectory(bad)
        assert any("schema" in p for p in problems)
        assert any("fusion" in p for p in problems)
        assert any("reason" in p for p in problems)


class TestDiffClassification:
    def _pair(self, base_value, cur_value, direction):
        base = make_snapshot(
            metrics={
                "m": bench_metric(base_value, direction=direction)
            }
        )
        cur = make_snapshot(
            seq=2,
            metrics={"m": bench_metric(cur_value, direction=direction)},
        )
        return diff_snapshots(base, cur, threshold_pct=10.0)

    def _entry(self, diff, name="bench.demo.m"):
        (entry,) = [e for e in diff["entries"] if e["metric"] == name]
        return entry

    def test_higher_is_better_improvement(self):
        diff = self._pair(10.0, 15.0, "higher")
        assert self._entry(diff)["classification"] == "improved"

    def test_higher_is_better_regression(self):
        diff = self._pair(10.0, 8.0, "higher")
        assert self._entry(diff)["classification"] == "regressed"

    def test_lower_is_better_flips_the_judgement(self):
        # The same +50% movement is a regression for latency...
        diff = self._pair(1.0, 1.5, "lower")
        assert self._entry(diff)["classification"] == "regressed"
        # ...and dropping 33% is an improvement.
        diff = self._pair(1.5, 1.0, "lower")
        assert self._entry(diff)["classification"] == "improved"

    def test_within_threshold_band(self):
        diff = self._pair(100.0, 104.0, "lower")
        entry = self._entry(diff)
        assert entry["classification"] == "within"
        assert entry["delta_pct"] == pytest.approx(4.0)

    def test_added_and_removed_metrics(self):
        base = make_snapshot(metrics={"old": bench_metric(1.0)})
        cur = make_snapshot(seq=2, metrics={"new": bench_metric(2.0)})
        diff = diff_snapshots(base, cur)
        by_name = {e["metric"]: e for e in diff["entries"]}
        assert by_name["bench.demo.old"]["classification"] == "removed"
        assert by_name["bench.demo.new"]["classification"] == "added"
        assert diff["counts"]["added"] == 1
        assert diff["counts"]["removed"] == 1

    def test_render_diff_orders_regressions_first(self):
        base = make_snapshot(
            metrics={
                "worse": bench_metric(10.0),
                "better": bench_metric(10.0),
            }
        )
        cur = make_snapshot(
            seq=2,
            metrics={
                "worse": bench_metric(5.0),
                "better": bench_metric(20.0),
            },
        )
        text = render_diff(diff_snapshots(base, cur))
        assert text.index("worse") < text.index("better")
        assert "✗ regressed" in text and "✓ improved" in text

    def test_profile_metrics_flattened(self):
        snap = make_snapshot(
            simulated={"total_s": 2.0},
            counters={"marshal.crossings": 4},
        )
        flat = snapshot_metrics(snap)
        assert flat["profile.app.simulated.total_s"]["direction"] == "lower"
        crossings = flat["profile.app.counters.marshal.crossings"]
        assert crossings["value"] == 4


class TestGate:
    def test_critical_path_regression_fails_the_gate(self):
        """The acceptance case: >10% on a simulated critical-path time
        must produce a nonzero gate verdict."""
        base = make_snapshot(simulated={"total_s": 1.0})
        bad = make_snapshot(seq=2, simulated={"total_s": 1.2})
        result = gate_snapshots(bad, base, threshold_pct=10.0)
        assert len(result["regressions"]) == 1
        assert "profile.app.simulated.total_s" in result["regressions"][0]

    def test_clean_snapshot_passes(self):
        base = make_snapshot(simulated={"total_s": 1.0})
        good = make_snapshot(seq=2, simulated={"total_s": 1.05})
        result = gate_snapshots(good, base, threshold_pct=10.0)
        assert result["regressions"] == []
        assert result["checked"] >= 1

    def test_wall_metrics_never_gate(self):
        base = make_snapshot(
            metrics={
                "wall_s": bench_metric(1.0, direction="lower", kind="wall")
            }
        )
        cur = make_snapshot(
            seq=2,
            metrics={
                "wall_s": bench_metric(9.0, direction="lower", kind="wall")
            },
        )
        result = gate_snapshots(cur, base)
        assert result["regressions"] == []
        assert result["checked"] == 0

    def test_added_removed_never_gate(self):
        base = make_snapshot(metrics={"old": bench_metric(1.0)})
        cur = make_snapshot(seq=2, metrics={"new": bench_metric(1.0)})
        result = gate_snapshots(cur, base)
        assert result["regressions"] == []

    def test_waiver_moves_regression_to_waived(self):
        base = make_snapshot(simulated={"total_s": 1.0})
        blessed = make_snapshot(
            seq=2,
            simulated={"total_s": 2.0},
            waivers=[
                {
                    "metric": "profile.app.simulated.total_s",
                    "reason": "fusion disabled while debugging",
                    "blessed_at": "f" * 40,
                }
            ],
        )
        result = gate_snapshots(blessed, base)
        assert result["regressions"] == []
        assert len(result["waived"]) == 1
        assert "fusion disabled" in result["waived"][0]

    def test_add_waivers_rewrites_the_snapshot(self, tmp_path):
        path = save_snapshot(
            make_snapshot(simulated={"total_s": 2.0}), str(tmp_path)
        )
        add_waivers(
            path, ["profile.app.simulated.total_s"], "intentional"
        )
        snapshot = validate_trajectory_file(path)
        assert snapshot["waivers"][0]["reason"] == "intentional"
        with pytest.raises(ValueError):
            add_waivers(path, ["x"], "")


class TestGateCli:
    """End-to-end through the argparse layer: exit codes are the CI
    contract (`make bench-gate`)."""

    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        base_p = tmp_path / "base.json"
        bad_p = tmp_path / "bad.json"
        base_p.write_text(
            json.dumps(make_snapshot(simulated={"total_s": 1.0}))
        )
        bad_p.write_text(
            json.dumps(
                make_snapshot(seq=2, simulated={"total_s": 1.5})
            )
        )
        rc = self._main(
            [
                "bench", "gate",
                "--baseline", str(base_p),
                "--current", str(bad_p),
                "--threshold", "10",
            ]
        )
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_skips_gracefully_below_two_entries(self, tmp_path, capsys):
        changelog = tmp_path / "changelogs"
        save_snapshot(make_snapshot(), str(changelog))
        rc = self._main(
            ["bench", "gate", "--changelog-dir", str(changelog)]
        )
        assert rc == 0
        assert "skipping" in capsys.readouterr().out

    def test_bless_then_pass(self, tmp_path, capsys):
        changelog = tmp_path / "changelogs"
        save_snapshot(
            make_snapshot(simulated={"total_s": 1.0}), str(changelog)
        )
        save_snapshot(
            make_snapshot(simulated={"total_s": 2.0}), str(changelog)
        )
        rc = self._main(
            [
                "bench", "gate",
                "--changelog-dir", str(changelog),
                "--bless", "--reason", "known tradeoff",
            ]
        )
        assert rc == 0
        # ... and the waiver persisted: a plain re-run passes too.
        rc = self._main(
            ["bench", "gate", "--changelog-dir", str(changelog)]
        )
        assert rc == 0

    def test_bless_requires_reason(self, tmp_path, capsys):
        rc = self._main(["bench", "gate", "--bless"])
        assert rc == 1
        assert "--reason" in capsys.readouterr().err


class TestTrend:
    def _series(self):
        return [
            make_snapshot(
                seq=1, label="PR 7",
                metrics={"speedup": bench_metric(2.0, unit="x")},
                simulated={"total_s": 4.0},
            ),
            make_snapshot(
                seq=2, label="PR 8",
                metrics={"speedup": bench_metric(3.0, unit="x")},
                simulated={"total_s": 2.0},
            ),
            make_snapshot(
                seq=3, label="PR 9",
                metrics={"speedup": bench_metric(4.5, unit="x")},
                simulated={"total_s": 1.0},
            ),
        ]

    def test_report_shape(self):
        report = trend_report(self._series())
        assert report["points"] == 3
        row = report["metrics"]["bench.demo.speedup"]
        assert row["values"] == [2.0, 3.0, 4.5]
        assert row["net"] == "improved"
        assert row["net_pct"] == pytest.approx(125.0)
        assert len(row["sparkline"]) == 3
        total = report["metrics"]["profile.app.simulated.total_s"]
        assert total["net"] == "improved"  # lower is better, fell 75%

    def test_metric_absent_from_one_snapshot(self):
        series = self._series()
        del series[1]["benches"]["demo"]["metrics"]["speedup"]
        report = trend_report(series)
        row = report["metrics"]["bench.demo.speedup"]
        assert row["values"] == [2.0, None, 4.5]
        assert " " in row["sparkline"]

    def test_golden_trend_report(self):
        """Freeze the rendered trend text; regenerate with
        REPRO_REGEN_TRAJECTORY_GOLDEN=1 when the renderer changes
        intentionally."""
        text = render_trend(trend_report(self._series())) + "\n"
        path = os.path.join(GOLDEN_DIR, "trend.txt")
        if REGEN:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w") as fh:
                fh.write(text)
            pytest.skip(f"regenerated {path}")
        with open(path) as fh:
            assert text == fh.read(), (
                f"trend rendering drifted from {path}; regenerate "
                "with REPRO_REGEN_TRAJECTORY_GOLDEN=1 if intentional"
            )


class TestExportDeterminism:
    """Satellite: exported traces must be byte-stable across runs so
    goldens and snapshot diffs never churn on dict ordering."""

    def _trace_bytes(self, tmp_path, name):
        from repro.obs import Tracer, write_chrome_trace, write_json_lines

        tracer = Tracer()
        # Attributes inserted in different orders across spans: the
        # exporter must normalize them.
        with tracer.span("run", zulu=1, alpha=2):
            tracer.counters.add("marshal.crossings", 2)
        with tracer.span("run.offload", beta=1, aleph=2):
            tracer.counters.add("cache.hit", 1)
        chrome = tmp_path / f"{name}.json"
        jsonl = tmp_path / f"{name}.jsonl"
        write_chrome_trace(tracer, str(chrome))
        write_json_lines(tracer, str(jsonl))
        return chrome.read_bytes(), jsonl.read_bytes()

    def test_chrome_and_jsonl_stable(self, tmp_path):
        a_chrome, a_jsonl = self._trace_bytes(tmp_path, "a")
        b_chrome, b_jsonl = self._trace_bytes(tmp_path, "b")

        def scrub(data):
            # Timestamps/durations differ run to run; key order and
            # attribute order must not.
            payload = json.loads(data)
            return json.dumps(payload, sort_keys=False)

        assert json.dumps(
            sorted(json.loads(a_chrome)["traceEvents"][0]["args"])
        ) == json.dumps(
            sorted(json.loads(b_chrome)["traceEvents"][0]["args"])
        )
        for line_a, line_b in zip(
            a_jsonl.decode().splitlines(), b_jsonl.decode().splitlines()
        ):
            obj_a, obj_b = json.loads(line_a), json.loads(line_b)
            assert list(obj_a) == list(obj_b)
            if obj_a.get("type") == "span":
                assert list(obj_a["attributes"]) == \
                    list(obj_b["attributes"])
                assert list(obj_a["attributes"]) == \
                    sorted(obj_a["attributes"])

    def test_span_args_sorted_in_chrome_trace(self, tmp_path):
        chrome, _ = self._trace_bytes(tmp_path, "c")
        payload = json.loads(chrome)
        for event in payload["traceEvents"]:
            if event.get("ph") == "X":
                keys = list(event["args"])
                assert keys == sorted(keys)
