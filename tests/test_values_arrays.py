"""Unit tests for value arrays ``T[[]]`` and ordinary arrays ``T[]``."""

import pytest

from repro.errors import ValueSemanticsError
from repro.values import (
    KIND_BIT,
    KIND_FLOAT,
    KIND_INT,
    Bit,
    MutableArray,
    ValueArray,
    array_kind,
    is_value,
    kind_of,
    parse_bit_literal,
)


class TestValueArray:
    def test_construction_and_access(self):
        arr = ValueArray(KIND_INT, [1, 2, 3])
        assert arr.length == 3
        assert list(arr) == [1, 2, 3]
        assert arr[0] == 1 and arr[2] == 3

    def test_immutability(self):
        arr = ValueArray(KIND_INT, [1, 2, 3])
        with pytest.raises(TypeError):
            arr[0] = 9  # Sequence without __setitem__
        with pytest.raises(ValueSemanticsError):
            arr._items = ()

    def test_is_value(self):
        assert is_value(ValueArray(KIND_INT, [1]))
        assert not is_value(MutableArray(KIND_INT, [1]))

    def test_float_coercion(self):
        arr = ValueArray(KIND_FLOAT, [1, 2.5])
        assert arr[0] == 1.0 and isinstance(arr[0], float)

    def test_heterogeneous_rejected(self):
        with pytest.raises(ValueSemanticsError):
            ValueArray(KIND_INT, [1, "two"])
        with pytest.raises(ValueSemanticsError):
            ValueArray(KIND_INT, [1, True])

    def test_structural_equality_and_hash(self):
        a = ValueArray(KIND_INT, [1, 2])
        b = ValueArray(KIND_INT, [1, 2])
        c = ValueArray(KIND_INT, [2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_bit_array_repr_is_literal(self):
        arr = ValueArray(KIND_BIT, parse_bit_literal("100"))
        assert repr(arr) == "100b"

    def test_slice_returns_value_array(self):
        arr = ValueArray(KIND_INT, [1, 2, 3, 4])
        sub = arr[1:3]
        assert isinstance(sub, ValueArray)
        assert list(sub) == [2, 3]

    def test_map_paper_semantics(self):
        # mapFlip(100b) == 001b (Section 2.2).
        arr = ValueArray(KIND_BIT, parse_bit_literal("100"))
        flipped = arr.map(lambda b: ~b, KIND_BIT)
        assert repr(flipped) == "011b"
        # And the exact paper example: flipping every bit of 100b.
        assert flipped == ValueArray(KIND_BIT, parse_bit_literal("011"))

    def test_reduce(self):
        arr = ValueArray(KIND_INT, [1, 2, 3, 4])
        assert arr.reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_rejected(self):
        with pytest.raises(ValueSemanticsError):
            ValueArray(KIND_INT, []).reduce(lambda a, b: a + b)

    def test_nested_value_arrays(self):
        inner_kind = KIND_INT
        outer = ValueArray(
            array_kind(inner_kind),
            [ValueArray(inner_kind, [1, 2]), ValueArray(inner_kind, [3])],
        )
        assert outer.length == 2
        assert outer[1][0] == 3

    def test_nested_mutable_frozen_on_insert(self):
        mutable = MutableArray(KIND_INT, [1, 2])
        outer = ValueArray(array_kind(KIND_INT), [mutable])
        mutable[0] = 99
        assert outer[0][0] == 1  # deep-frozen at construction

    def test_kind_of(self):
        assert kind_of(ValueArray(KIND_INT, [1])) == array_kind(KIND_INT)


class TestMutableArray:
    def test_allocate_defaults(self):
        arr = MutableArray.allocate(KIND_BIT, 4)
        assert arr.length == 4
        assert all(b is Bit.ZERO for b in arr)
        ints = MutableArray.allocate(KIND_INT, 2)
        assert list(ints) == [0, 0]

    def test_allocate_negative_rejected(self):
        with pytest.raises(ValueSemanticsError):
            MutableArray.allocate(KIND_INT, -1)

    def test_store_and_load(self):
        arr = MutableArray.allocate(KIND_INT, 3)
        arr[1] = 42
        assert arr[1] == 42

    def test_store_type_checked(self):
        arr = MutableArray.allocate(KIND_INT, 1)
        with pytest.raises(ValueSemanticsError):
            arr[0] = 1.5

    def test_freeze_is_deep_copy(self):
        arr = MutableArray(KIND_INT, [1, 2])
        frozen = arr.freeze()
        arr[0] = 99
        assert frozen[0] == 1

    def test_from_mutable_matches_figure1_line21(self):
        # new bit[[]](result) where result is a bit[].
        result = MutableArray(KIND_BIT, parse_bit_literal("011"))
        frozen = ValueArray.from_mutable(result)
        assert repr(frozen) == "011b"

    def test_thaw_roundtrip(self):
        original = ValueArray(KIND_INT, [5, 6])
        thawed = original.thaw()
        thawed[0] = 7
        assert original[0] == 5
        assert thawed.freeze() == ValueArray(KIND_INT, [7, 6])
