"""Unit tests for the Lime ``bit`` type and bit literals (Figure 1)."""

import pytest

from repro.errors import ValueSemanticsError
from repro.values import (
    Bit,
    bits_to_int,
    format_bit_literal,
    int_to_bits,
    parse_bit_literal,
)
from repro.values.bits import pack_bits, unpack_bits


class TestBit:
    def test_interning(self):
        assert Bit(0) is Bit.ZERO
        assert Bit(1) is Bit.ONE
        assert Bit(0) is Bit(0)

    def test_invert_matches_paper_tilde_method(self):
        # Figure 1 lines 3-5: ~zero == one and ~one == zero.
        assert ~Bit.ZERO is Bit.ONE
        assert ~Bit.ONE is Bit.ZERO

    def test_double_invert_is_identity(self):
        for b in (Bit.ZERO, Bit.ONE):
            assert ~~b is b

    def test_int_and_bool_conversion(self):
        assert int(Bit.ONE) == 1
        assert int(Bit.ZERO) == 0
        assert bool(Bit.ONE) is True
        assert bool(Bit.ZERO) is False

    def test_logic_operators(self):
        assert (Bit.ONE & Bit.ZERO) is Bit.ZERO
        assert (Bit.ONE | Bit.ZERO) is Bit.ONE
        assert (Bit.ONE ^ Bit.ONE) is Bit.ZERO
        assert (Bit.ONE ^ Bit.ZERO) is Bit.ONE

    def test_immutability(self):
        with pytest.raises(ValueSemanticsError):
            Bit.ONE.anything = 3

    def test_equality_and_hash(self):
        assert Bit.ONE == Bit(1)
        assert Bit.ONE != Bit.ZERO
        assert len({Bit.ZERO, Bit.ONE, Bit(0), Bit(1)}) == 2

    def test_ordinal(self):
        assert Bit.ZERO.ordinal == 0
        assert Bit.ONE.ordinal == 1

    def test_repr_uses_enum_constant_names(self):
        assert repr(Bit.ZERO) == "zero"
        assert repr(Bit.ONE) == "one"


class TestBitLiterals:
    def test_paper_example_100b(self):
        # "the bit literal 100b is a 3-bit array where bit[0]=0 and
        # bit[2]=1" (Section 2.2).
        bits = parse_bit_literal("100")
        assert len(bits) == 3
        assert bits[0] is Bit.ZERO
        assert bits[1] is Bit.ZERO
        assert bits[2] is Bit.ONE

    def test_roundtrip_format(self):
        for text in ("0", "1", "100", "110010111", "0001"):
            assert format_bit_literal(parse_bit_literal(text)) == text + "b"

    def test_malformed_literal_rejected(self):
        with pytest.raises(ValueError):
            parse_bit_literal("102")
        with pytest.raises(ValueError):
            parse_bit_literal("")

    def test_bits_to_int(self):
        # 100b: LSB-first (0,0,1) == decimal 4.
        assert bits_to_int(parse_bit_literal("100")) == 4
        assert bits_to_int(parse_bit_literal("111")) == 7
        assert bits_to_int(parse_bit_literal("0")) == 0

    def test_int_to_bits_roundtrip(self):
        for n in (0, 1, 5, 100, 255, 1023):
            width = max(n.bit_length(), 1)
            assert bits_to_int(int_to_bits(n, width)) == n

    def test_int_to_bits_negative_width(self):
        with pytest.raises(ValueError):
            int_to_bits(3, -1)


class TestBitPacking:
    def test_pack_8_bits_per_byte(self):
        bits = parse_bit_literal("10110101")
        packed = pack_bits(bits)
        assert len(packed) == 1
        assert unpack_bits(packed, 8) == bits

    def test_pack_partial_byte(self):
        bits = parse_bit_literal("101")
        packed = pack_bits(bits)
        assert len(packed) == 1
        assert unpack_bits(packed, 3) == bits

    def test_pack_empty(self):
        assert pack_bits(()) == b""
        assert unpack_bits(b"", 0) == ()

    def test_unpack_too_few_bytes(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", 9)

    def test_pack_density(self):
        # 1000 bits should occupy 125 bytes, not 1000.
        bits = tuple(Bit(i % 2) for i in range(1000))
        assert len(pack_bits(bits)) == 125
