"""Tests for the universal wire format (Figure 3, Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalingError
from repro.values import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Bit,
    EnumValue,
    MutableArray,
    ValueArray,
    array_kind,
    deserialize,
    enum_kind,
    serialize,
    serializer_for,
)


class TestScalars:
    @pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31)])
    def test_int_roundtrip(self, value):
        assert deserialize(serialize(value)) == value

    def test_long_roundtrip(self):
        value = 2**40
        assert deserialize(serialize(value)) == value

    def test_int_out_of_range(self):
        with pytest.raises(MarshalingError):
            serializer_for(KIND_INT).serialize(2**31)

    def test_float_is_binary32(self):
        # float kind truncates to single precision on the wire.
        data = serializer_for(KIND_FLOAT).serialize(1.1)
        value, _ = serializer_for(KIND_FLOAT).deserialize(data)
        assert value == pytest.approx(1.1, rel=1e-6)
        assert value != 1.1  # precision was genuinely reduced

    def test_double_roundtrip_exact(self):
        data = serializer_for(KIND_DOUBLE).serialize(1.1)
        value, _ = serializer_for(KIND_DOUBLE).deserialize(data)
        assert value == 1.1

    def test_boolean_roundtrip(self):
        assert deserialize(serialize(True)) is True
        assert deserialize(serialize(False)) is False

    def test_bit_roundtrip(self):
        assert deserialize(serialize(Bit.ONE)) is Bit.ONE
        assert deserialize(serialize(Bit.ZERO)) is Bit.ZERO

    def test_wrong_tag_rejected(self):
        data = serialize(True)
        with pytest.raises(MarshalingError):
            serializer_for(KIND_INT).deserialize(data)


class TestEnums:
    def test_enum_roundtrip(self):
        value = EnumValue("color", 2, 3)
        assert deserialize(serialize(value)) == value

    def test_enum_array_dense(self):
        kind = enum_kind("color", 3)
        arr = ValueArray(kind, [EnumValue("color", i, 3) for i in (0, 1, 2)])
        # Dense payload: 1 byte per element.
        data = serialize(arr)
        assert deserialize(data) == arr


class TestArrays:
    def test_int_array_roundtrip(self):
        arr = ValueArray(KIND_INT, [1, -2, 3])
        assert deserialize(serialize(arr)) == arr

    def test_bit_array_is_densely_packed(self):
        arr = ValueArray(KIND_BIT, [Bit(i % 2) for i in range(64)])
        data = serialize(arr)
        # tag + elem tag + u32 count + 8 bytes of bits.
        assert len(data) == 1 + 1 + 4 + 8
        assert deserialize(data) == arr

    def test_mutable_array_rejected(self):
        arr = MutableArray(KIND_INT, [1])
        serializer = serializer_for(array_kind(KIND_INT))
        with pytest.raises(MarshalingError):
            serializer.serialize(arr)

    def test_empty_array_roundtrip(self):
        arr = ValueArray(KIND_FLOAT, [])
        assert deserialize(serialize(arr)) == arr

    def test_nested_array_roundtrip(self):
        arr = ValueArray(
            array_kind(KIND_INT),
            [ValueArray(KIND_INT, [1, 2]), ValueArray(KIND_INT, [])],
        )
        assert deserialize(serialize(arr)) == arr

    def test_float_in_int_out_like_figure3(self):
        # Figure 3 uses a float array as input and an int array as output.
        fin = ValueArray(KIND_FLOAT, [0.5, 1.5, 2.5])
        iout = ValueArray(KIND_INT, [0, 1, 2])
        assert deserialize(serialize(fin)) == fin
        assert deserialize(serialize(iout)) == iout

    def test_trailing_bytes_rejected(self):
        data = serialize(ValueArray(KIND_INT, [1])) + b"\x00"
        with pytest.raises(MarshalingError):
            deserialize(data)

    def test_empty_payload_rejected(self):
        with pytest.raises(MarshalingError):
            deserialize(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(MarshalingError):
            deserialize(b"\xff\x00")


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1)))
    def test_int_arrays_roundtrip(self, xs):
        arr = ValueArray(KIND_INT, xs)
        assert deserialize(serialize(arr)) == arr

    @given(st.lists(st.booleans()))
    def test_boolean_arrays_roundtrip(self, xs):
        arr = ValueArray(KIND_BOOLEAN, xs)
        assert deserialize(serialize(arr)) == arr

    @given(st.lists(st.integers(min_value=0, max_value=1)))
    def test_bit_arrays_roundtrip(self, xs):
        arr = ValueArray(KIND_BIT, [Bit(x) for x in xs])
        assert deserialize(serialize(arr)) == arr

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32)
        )
    )
    def test_float_arrays_roundtrip(self, xs):
        arr = ValueArray(KIND_FLOAT, xs)
        assert deserialize(serialize(arr)) == arr

    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1)))
    def test_long_arrays_roundtrip(self, xs):
        arr = ValueArray(KIND_LONG, xs)
        assert deserialize(serialize(arr)) == arr

    @settings(max_examples=25)
    @given(
        st.lists(
            st.lists(st.integers(min_value=-100, max_value=100), max_size=5),
            max_size=5,
        )
    )
    def test_nested_arrays_roundtrip(self, xss):
        arr = ValueArray(
            array_kind(KIND_INT), [ValueArray(KIND_INT, xs) for xs in xss]
        )
        assert deserialize(serialize(arr)) == arr

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_wire_format_is_deterministic(self, x):
        assert serialize(x) == serialize(x)
