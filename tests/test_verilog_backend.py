"""Tests for the FPGA backend: datapath synthesis, Verilog text, RTL
simulation, and the Figure 4 waveform behaviour."""

import pytest

from tests.lime_sources import FIGURE1
from repro.backends.verilog import DatapathBuilder, compile_fpga
from repro.backends.verilog.codegen import eval_datapath
from repro.devices.fpga import FPGASimulator
from repro.errors import ExclusionNotice, SimulationError
from repro.ir import build_ir
from repro.ir import nodes as ir
from repro.lime import analyze


def module_for(source):
    return build_ir(analyze(source))


def datapath_for(source, method):
    module = module_for(source)
    return DatapathBuilder(module).build(method), module


class TestDatapathBuilder:
    def test_bitflip_datapath(self):
        datapath, _ = datapath_for(FIGURE1, "Bitflip.flip")
        assert isinstance(datapath, ir.EIntrinsic)
        assert datapath.name == "bit.~"
        assert eval_datapath(datapath, {"b": 0}) == 1
        assert eval_datapath(datapath, {"b": 1}) == 0

    def test_if_conversion(self):
        source = """
        class T {
            local static int clamp(int x) {
                if (x > 100) { return 100; }
                return x;
            }
        }
        """
        datapath, _ = datapath_for(source, "T.clamp")
        assert isinstance(datapath, ir.ETernary)
        assert eval_datapath(datapath, {"x": 250}) == 100
        assert eval_datapath(datapath, {"x": 42}) == 42

    def test_loop_unrolling(self):
        source = """
        class T {
            local static int sum3(int x) {
                int s = 0;
                for (int i = 0; i < 3; i++) { s += x; }
                return s;
            }
        }
        """
        datapath, _ = datapath_for(source, "T.sum3")
        assert eval_datapath(datapath, {"x": 7}) == 21

    def test_call_inlining(self):
        source = """
        class T {
            local static int dbl(int x) { return x * 2; }
            local static int quad(int x) { return dbl(dbl(x)); }
        }
        """
        datapath, _ = datapath_for(source, "T.quad")
        assert eval_datapath(datapath, {"x": 5}) == 20

    def test_while_excluded(self):
        source = (
            "class T { local static int f(int x) "
            "{ while (x > 0) { x -= 1; } return x; } }"
        )
        module = module_for(source)
        with pytest.raises(ExclusionNotice):
            DatapathBuilder(module).build("T.f")

    def test_float_excluded(self):
        source = (
            "class T { local static float f(float x) { return x * 2.0f; } }"
        )
        module = module_for(source)
        with pytest.raises(ExclusionNotice):
            DatapathBuilder(module).build("T.f")

    def test_unroll_budget(self):
        source = (
            "class T { local static int f(int x) { int s = 0; "
            "for (int i = 0; i < 100000; i++) { s += x; } return s; } }"
        )
        module = module_for(source)
        with pytest.raises(ExclusionNotice):
            DatapathBuilder(module).build("T.f")

    def test_dynamic_bounds_excluded(self):
        source = (
            "class T { local static int f(int x) { int s = 0; "
            "for (int i = 0; i < x; i++) { s += 1; } return s; } }"
        )
        module = module_for(source)
        with pytest.raises(ExclusionNotice):
            DatapathBuilder(module).build("T.f")

    def test_branch_merge_without_return(self):
        source = """
        class T {
            local static int f(int x) {
                int y = 0;
                if (x > 0) { y = x; } else { y = -x; }
                return y + 1;
            }
        }
        """
        datapath, _ = datapath_for(source, "T.f")
        assert eval_datapath(datapath, {"x": 5}) == 6
        assert eval_datapath(datapath, {"x": -5}) == 6

    def test_math_min_becomes_mux(self):
        source = (
            "class T { local static int f(int a, int b) "
            "{ return Math.min(a, b); } }"
        )
        datapath, _ = datapath_for(source, "T.f")
        assert eval_datapath(datapath, {"a": 3, "b": 9}) == 3
        assert eval_datapath(datapath, {"a": 9, "b": 3}) == 3


class TestVerilogText:
    def test_figure1_module(self):
        backend = compile_fpga(module_for(FIGURE1))
        assert len(backend.artifacts) == 1
        text = backend.artifacts[0].text
        assert "module mod_Bitflip_flip" in text
        assert "input  wire inReady" in text
        assert "output wire outReady" in text
        assert "inData" in text  # FIFO output, as in the waveform
        assert "initiation interval: 3" in text

    def test_pipelined_variant(self):
        backend = compile_fpga(module_for(FIGURE1), pipelined=True)
        text = backend.artifacts[0].text
        assert "initiation interval: 1" in text

    def test_synthesis_properties_in_manifest(self):
        backend = compile_fpga(module_for(FIGURE1))
        props = backend.artifacts[0].manifest.properties
        assert props["luts"] >= 1
        assert props["fmax_hz"] > 50e6
        assert props["brams"] == 1

    def test_exclusion_recorded(self):
        source = """
        class T {
            local static float f(float x) { return x + 1.0f; }
            static void m(float[[]] xs, float[] out) {
                var t = xs.source(1) => ([ task f ]) => out.sink();
                t.finish();
            }
        }
        """
        backend = compile_fpga(module_for(source))
        assert backend.artifacts == []
        assert len(backend.exclusions) == 1
        assert "synthesizable" in backend.exclusions[0].reason


class TestRTLSimulation:
    def bitflip_bundle(self, pipelined=False):
        backend = compile_fpga(module_for(FIGURE1), pipelined=pipelined)
        return backend.artifacts[0].payload

    def test_flip_stream_correct(self):
        bundle = self.bitflip_bundle()
        netlist = bundle.elaborate()
        sim = FPGASimulator()
        items = [1, 1, 0, 0, 1, 0, 1, 1, 1]  # 110010111b, 9 bits
        result = sim.run_stream(netlist, items)
        assert result.outputs == [1 - b for b in items]

    def test_figure4_nine_inready_pulses(self):
        # The example is driven with 9 input bits, represented by 9
        # transitions on the inReady signal (Section 5).
        bundle = self.bitflip_bundle()
        sim = FPGASimulator()
        result = sim.run_stream(
            bundle.elaborate(),
            [1, 1, 0, 0, 1, 0, 1, 1, 1],
            return_to_zero=True,
        )
        assert len(result.details["enqueue_times"]) == 9
        assert len(result.vcd.rising_edges("inReady")) == 9

    def test_figure4_fifo_one_cycle_latency(self):
        # "inReady is asserted and inData[0] is high one cycle later."
        bundle = self.bitflip_bundle()
        sim = FPGASimulator(period_ns=4)
        result = sim.run_stream(
            bundle.elaborate(), [1], return_to_zero=True
        )
        in_ready_t = result.vcd.rising_edges("inReady")[0]
        in_data_t = result.vcd.rising_edges("inData")[0]
        assert in_data_t - in_ready_t == 4  # one 4ns cycle later

    def test_figure4_three_cycle_latency_after_fifo(self):
        # "one cycle to read, one cycle to compute, and one cycle to
        # publish the result": outReady three cycles after the FIFO
        # presents the value. Input 0 so outData goes high (flip).
        bundle = self.bitflip_bundle()
        sim = FPGASimulator(period_ns=4)
        result = sim.run_stream(
            bundle.elaborate(), [0], return_to_zero=True
        )
        in_data_seen = result.vcd.rising_edges("fifo_valid")[0]
        out_ready_t = result.vcd.rising_edges("outReady")[0]
        assert out_ready_t - in_data_seen == 3 * 4

    def test_vcd_renders(self):
        bundle = self.bitflip_bundle()
        sim = FPGASimulator()
        result = sim.run_stream(bundle.elaborate(), [1, 0])
        text = result.vcd.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "#0" in text

    def test_pipelined_higher_throughput(self):
        items = [i % 2 for i in range(32)]
        plain = FPGASimulator().run_stream(
            self.bitflip_bundle(False).elaborate(), list(items)
        )
        piped = FPGASimulator().run_stream(
            self.bitflip_bundle(True).elaborate(), list(items)
        )
        assert piped.outputs == plain.outputs
        assert piped.cycles < plain.cycles
        assert piped.throughput_items_per_cycle > 0.8

    def test_int_module(self):
        source = """
        class T {
            local static int scale(int x) { return x * 3 - 1; }
            static void m(int[[]] xs, int[] out) {
                var t = xs.source(1) => ([ task scale ]) => out.sink();
                t.finish();
            }
        }
        """
        backend = compile_fpga(module_for(source))
        bundle = backend.artifacts[0].payload
        netlist = bundle.elaborate()
        result = FPGASimulator().run_stream(
            netlist, [bundle.encode(v) for v in [0, 5, -4]]
        )
        decoded = [bundle.decode(raw) for raw in result.outputs]
        assert decoded == [-1, 14, -13]

    def test_simulation_timeout(self):
        bundle = self.bitflip_bundle()
        with pytest.raises(SimulationError):
            FPGASimulator().run_stream(
                bundle.elaborate(), [1], expected_outputs=5, max_cycles=50
            )


class TestFusedModules:
    SOURCE = """
    class P {
        local static int inc(int x) { return x + 1; }
        local static int dbl(int x) { return x * 2; }
        static void m(int[[]] xs, int[] out) {
            var t = xs.source(1) => ([ task inc => task dbl ]) => out.sink();
            t.finish();
        }
    }
    """

    def test_fused_module_produced(self):
        backend = compile_fpga(module_for(self.SOURCE))
        fused = [
            a for a in backend.artifacts if len(a.manifest.task_ids) == 2
        ]
        assert len(fused) == 1

    def test_fused_module_computes_composition(self):
        backend = compile_fpga(module_for(self.SOURCE))
        fused = [
            a for a in backend.artifacts if len(a.manifest.task_ids) == 2
        ][0]
        bundle = fused.payload
        result = FPGASimulator().run_stream(
            bundle.elaborate(), [bundle.encode(3)]
        )
        assert bundle.decode(result.outputs[0]) == 8  # (3+1)*2
