"""Tests for the generated self-checking Verilog testbench."""

import pytest

from repro.apps import compile_app
from repro.backends.verilog import generate_testbench


def bundle_for(app):
    compiled = compile_app(app)
    return compiled.store.for_device("fpga")[0].payload


class TestTestbench:
    def test_structure(self):
        bundle = bundle_for("bitflip")
        tb = generate_testbench(bundle, [1, 0, 1])
        assert "`timescale 1ns/1ps" in tb
        assert f"module tb_{bundle.name};" in tb
        assert f"{bundle.name} dut (" in tb
        assert "$dumpfile" in tb
        assert "$finish" in tb

    def test_stimulus_and_expected_arrays(self):
        bundle = bundle_for("bitflip")
        tb = generate_testbench(bundle, [1, 0])
        assert "stimulus[0] = 1'd1;" in tb
        assert "stimulus[1] = 1'd0;" in tb
        # Expected values are the flipped bits.
        assert "expected[0] = 1'd0;" in tb
        assert "expected[1] = 1'd1;" in tb

    def test_self_check_logic(self):
        tb = generate_testbench(bundle_for("bitflip"), [1])
        assert "if (outData !== expected[received])" in tb
        assert 'display("PASS' in tb.replace("$", "")

    def test_int_module_expected_values(self):
        bundle = bundle_for("crc8")
        inputs = [0x55, 0xAA]

        def crc8_ref(b):
            crc = b & 255
            for _ in range(8):
                fb = crc & 1
                crc >>= 1
                if fb:
                    crc ^= 0x8C
            return crc

        tb = generate_testbench(bundle, inputs)
        for i, x in enumerate(inputs):
            assert f"expected[{i}] = 32'd{crc8_ref(x)};" in tb

    def test_negative_input_masked(self):
        bundle = bundle_for("gray_pipeline")
        tb = generate_testbench(bundle, [-1 & 0xFFFFFFFF])
        assert "'d4294967295;" in tb
        assert "'d-" not in tb  # no illegal negative literals

    def test_timeout_guard_present(self):
        tb = generate_testbench(bundle_for("bitflip"), [1, 1, 1])
        assert "timeout" in tb
