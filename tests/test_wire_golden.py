"""Golden wire-format vectors (Section 4.3).

Every tag byte the universal wire format can emit (0x01-0x08, plus the
0x09 batch frame) is locked to an on-disk hex vector in
``tests/golden/wire/``. The vectors are the regression fence for the
batched fast path: any byte-level drift — a header reshuffle, an
endianness slip, a bit-packing change — fails here before it can break
a real device boundary. See that directory's README to regenerate
after an *intentional* format change.
"""

import os

import pytest

from repro.values import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Bit,
    EnumValue,
    ValueArray,
    array_kind,
    enum_kind,
    deserialize,
    deserialize_batch,
    serialize,
    serialize_batch,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "wire")


def _enum(ordinal):
    return EnumValue("Color", ordinal, 5)


#: name -> value serialized with the scalar path. Every wire tag
#: (0x01-0x08) appears at least once, negatives and extremes included.
SCALAR_CASES = {
    "int_zero": 0,
    "int_positive": 0x12345678,
    "int_negative": -2,
    "int_min": -(2**31),
    "int_max": 2**31 - 1,
    "long_positive": 2**40,
    "long_negative": -(2**40),
    "float_one_and_half": 1.5,
    "double_negative": -2.5,
    "boolean_true": True,
    "boolean_false": False,
    "bit_zero": Bit(0),
    "bit_one": Bit(1),
    "enum_color": _enum(2),
    "array_int": ValueArray(KIND_INT, [1, -1, 0x12345678]),
    "array_long": ValueArray(KIND_LONG, [2**40, -(2**40)]),
    "array_float": ValueArray(KIND_FLOAT, [0.5, -1.5]),
    "array_double": ValueArray(KIND_DOUBLE, [0.1, -0.1]),
    "array_boolean": ValueArray(KIND_BOOLEAN, [True, False, True]),
    "array_bit_lsb": ValueArray(
        KIND_BIT, [Bit(b) for b in (1, 0, 1, 1, 0, 0, 1, 0, 1)]
    ),
    "array_enum": ValueArray(
        enum_kind("Color", 5), [_enum(0), _enum(4), _enum(2)]
    ),
    "array_nested": ValueArray(
        array_kind(KIND_INT),
        [ValueArray(KIND_INT, [1, 2]), ValueArray(KIND_INT, [3])],
    ),
    "array_empty": ValueArray(KIND_INT, []),
}

#: name -> (values, explicit kind or None) serialized as a 0x09 frame.
BATCH_CASES = {
    "batch_int": ([7, -7, 42], None),
    "batch_long_widened": ([1, 2**40], None),
    "batch_double": ([0.25, -0.25], None),
    "batch_boolean": ([True, False], None),
    "batch_bit_lsb": ([Bit(b) for b in (1, 0, 1, 1, 0, 0, 1, 0, 1)], None),
    "batch_enum": ([_enum(1), _enum(3)], None),
    "batch_array": (
        [ValueArray(KIND_INT, [1, 2]), ValueArray(KIND_INT, [3])],
        None,
    ),
    "batch_empty_int": ([], KIND_INT),
}


def _read_golden(name):
    path = os.path.join(GOLDEN_DIR, name + ".hex")
    with open(path) as fh:
        text = "".join(
            line for line in fh if not line.lstrip().startswith("#")
        )
    return bytes.fromhex("".join(text.split()))


@pytest.mark.parametrize("name", sorted(SCALAR_CASES))
def test_scalar_vector_locked(name):
    value = SCALAR_CASES[name]
    golden = _read_golden(name)
    assert serialize(value) == golden, (
        f"wire bytes for {name} drifted from tests/golden/wire/{name}.hex"
    )
    assert deserialize(golden) == value


@pytest.mark.parametrize("name", sorted(BATCH_CASES))
def test_batch_vector_locked(name):
    values, kind = BATCH_CASES[name]
    golden = _read_golden(name)
    assert serialize_batch(values, kind=kind) == golden, (
        f"batch frame for {name} drifted from tests/golden/wire/{name}.hex"
    )
    assert deserialize_batch(golden) == list(values)


# -- hand-computed anchors --------------------------------------------------
# A few vectors are re-derived from the spec by hand so the goldens
# cannot silently co-drift with the implementation that generated them.


def test_int_layout_by_hand():
    # 0x01 tag, then 4-byte little-endian two's complement.
    assert serialize(0x12345678) == bytes.fromhex("0178563412")
    assert serialize(-2) == bytes.fromhex("01feffffff")


def test_boolean_and_bit_layout_by_hand():
    assert serialize(True) == bytes.fromhex("0501")
    assert serialize(Bit(1)) == bytes.fromhex("0601")


def test_enum_layout_by_hand():
    # 0x07 tag, u8 name length, utf-8 name, u8 size, u8 ordinal.
    assert serialize(_enum(2)) == bytes.fromhex("0705") + b"Color" + bytes(
        [5, 2]
    )


def test_bit_array_is_lsb_first_by_hand():
    # Bits 1,0,1,1,0,0,1,0 pack to 0x4d (LSB first); the ninth bit
    # starts a new byte at its bit 0.
    value = SCALAR_CASES["array_bit_lsb"]
    assert serialize(value) == bytes.fromhex("080609000000") + bytes(
        [0x4D, 0x01]
    )


def test_batch_frame_matches_array_frame_by_hand():
    # The 0x09 frame is the 0x08 frame with only the leading tag
    # changed — the amortization claim in docs/PERFORMANCE.md depends
    # on the payload block being byte-identical.
    values = [7, -7, 42]
    batch = serialize_batch(values)
    array = serialize(ValueArray(KIND_INT, values))
    assert batch[0] == 0x09
    assert array[0] == 0x08
    assert batch[1:] == array[1:]
