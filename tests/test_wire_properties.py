"""Property-based round-trip conformance for the wire format.

Randomized (but seeded — every run sees the same inputs) generators
cover every value kind the wire format can carry, and every batch size
the ISSUE calls out: 0, 1, the 7/8/9 straddle of a bit-packing byte
boundary, and 1000. Two invariants anchor the batched fast path:

* ``deserialize(serialize(v)) == v`` and
  ``deserialize_batch(serialize_batch(vs)) == vs`` for all kinds;
* a 0x09 batch frame is byte-for-byte the 0x08 array frame after the
  leading tag, for every kind and every size — the property that lets
  the per-crossing cost model treat both paths identically.

Plain ``random.Random`` keeps the suite dependency-free; the existing
hypothesis-based tests in test_values_marshal.py stay as-is.
"""

import random
import struct

import pytest

from repro.errors import MarshalingError
from repro.values.base import INT_MAX, INT_MIN
from repro.values import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Bit,
    EnumValue,
    ValueArray,
    array_kind,
    deserialize,
    deserialize_batch,
    enum_kind,
    infer_batch_kind,
    serialize,
    serialize_batch,
)

SEED = 0xC0FFEE
BATCH_SIZES = (0, 1, 7, 8, 9, 1000)
LONG_MIN, LONG_MAX = -(2**63), 2**63 - 1


def _binary32(x):
    """Snap a double to the nearest binary32 value, so a float-kind
    wire round trip is exact rather than approximate."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def _gen_value(kind, rng):
    name = kind.name
    if name == "int":
        return rng.randint(INT_MIN, INT_MAX)
    if name == "long":
        # Bias outside the int range so the long layout is exercised.
        v = rng.randint(LONG_MIN, LONG_MAX)
        return v if rng.random() < 0.5 else rng.choice(
            [LONG_MIN, LONG_MAX, INT_MAX + 1, INT_MIN - 1, v]
        )
    if name == "float":
        return _binary32(rng.uniform(-1e6, 1e6))
    if name == "double":
        return rng.uniform(-1e12, 1e12)
    if name == "boolean":
        return rng.random() < 0.5
    if name == "bit":
        return Bit(rng.randint(0, 1))
    if kind.is_enum:
        return EnumValue(kind.enum_name, rng.randrange(kind.enum_size), kind.enum_size)
    if kind.is_array:
        n = rng.randint(0, 5)
        return ValueArray(
            kind.element, [_gen_value(kind.element, rng) for _ in range(n)]
        )
    raise AssertionError(f"no generator for {kind}")


#: Every kind the batch frame supports, with a stable id for -k.
KINDS = {
    "int": KIND_INT,
    "long": KIND_LONG,
    "float": KIND_FLOAT,
    "double": KIND_DOUBLE,
    "boolean": KIND_BOOLEAN,
    "bit": KIND_BIT,
    "enum": enum_kind("Season", 4),
    "array_int": array_kind(KIND_INT),
    "array_bit": array_kind(KIND_BIT),
}


def _batch(kind, size, seed_salt=0):
    rng = random.Random(SEED + size + seed_salt)
    return [_gen_value(kind, rng) for _ in range(size)]


@pytest.mark.parametrize("kind_id", sorted(KINDS))
def test_scalar_roundtrip_every_kind(kind_id):
    kind = KINDS[kind_id]
    rng = random.Random(SEED)
    for _ in range(200):
        value = _gen_value(kind, rng)
        data = serialize(value)
        assert deserialize(data) == value


@pytest.mark.parametrize("kind_id", sorted(KINDS))
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_batch_roundtrip(kind_id, size):
    kind = KINDS[kind_id]
    values = _batch(kind, size)
    data = serialize_batch(values, kind=kind)
    assert deserialize_batch(data) == values


@pytest.mark.parametrize("kind_id", sorted(KINDS))
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_batch_frame_equals_array_frame_after_tag(kind_id, size):
    # The amortization property: a batch of N values and the array of
    # the same N values produce identical payload blocks; only the
    # leading tag (0x09 vs 0x08) differs. Byte counts are therefore
    # equal, so the modeled per-byte transfer times agree too.
    kind = KINDS[kind_id]
    values = _batch(kind, size)
    batch = serialize_batch(values, kind=kind)
    array = serialize(ValueArray(kind, values))
    assert batch[0] == 0x09
    assert array[0] == 0x08
    assert batch[1:] == array[1:]
    assert len(batch) == len(array)


@pytest.mark.parametrize("kind_id", sorted(KINDS))
def test_batch_values_reserialize_identically(kind_id):
    # Values that came back from a batch frame are indistinguishable on
    # the scalar path from the originals — the differential suite's
    # bit-identity claim, at the single-value level.
    kind = KINDS[kind_id]
    values = _batch(kind, 9, seed_salt=1)
    back = deserialize_batch(serialize_batch(values, kind=kind))
    for original, returned in zip(values, back):
        assert serialize(original) == serialize(returned)


def test_batch_int_widens_to_long():
    values = [1, 2, INT_MAX + 1]
    assert infer_batch_kind(values).name == "long"
    assert deserialize_batch(serialize_batch(values)) == values


def test_empty_batch_requires_explicit_kind():
    with pytest.raises(MarshalingError):
        serialize_batch([])
    data = serialize_batch([], kind=KIND_INT)
    assert deserialize_batch(data) == []


def test_heterogeneous_batch_rejected():
    with pytest.raises(MarshalingError):
        serialize_batch([1, True])
    with pytest.raises(MarshalingError):
        serialize_batch([1.5, 1])
    with pytest.raises(MarshalingError):
        serialize_batch(
            [EnumValue("A", 0, 2), EnumValue("B", 0, 2)]
        )


def test_scalar_deserialize_rejects_batch_frame():
    data = serialize_batch([1, 2, 3])
    with pytest.raises(MarshalingError):
        deserialize(data)


def test_batch_deserialize_rejects_trailing_bytes():
    data = serialize_batch([1, 2, 3])
    with pytest.raises(MarshalingError):
        deserialize_batch(data + b"\x00")


def test_batch_deserialize_rejects_scalar_frame():
    with pytest.raises(MarshalingError):
        deserialize_batch(serialize(7))
